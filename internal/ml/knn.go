package ml

import (
	"fmt"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/mat"
	"vfps/internal/topk"
)

// KNN is the downstream k-nearest-neighbours classifier of §V-A: every
// participant computes partial distances, the server aggregates them into
// complete distances under HE, and the leader identifies the top-k
// neighbours and takes a majority vote.
type KNN struct {
	K       int
	classes int
	trainPt *dataset.Partition
	yTrain  []int
	// Counts, when non-nil, accumulates the federated inference cost: per
	// query, each party encrypts its partial distances to every training
	// instance and the server aggregates them.
	Counts *costmodel.Counts
}

// NewKNN builds the classifier.
func NewKNN(k, classes int) (*KNN, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ml: knn k=%d must be positive", k)
	}
	if classes < 2 {
		return nil, fmt.Errorf("ml: knn needs at least 2 classes")
	}
	return &KNN{K: k, classes: classes}, nil
}

// Fit stores the training partition and labels.
func (m *KNN) Fit(trainPt *dataset.Partition, yTrain []int) error {
	if trainPt == nil || trainPt.P() == 0 {
		return fmt.Errorf("ml: knn needs a partition")
	}
	if trainPt.Parties[0].Rows != len(yTrain) {
		return fmt.Errorf("ml: knn rows/labels mismatch")
	}
	if m.K > len(yTrain) {
		return fmt.Errorf("ml: knn k=%d exceeds %d training rows", m.K, len(yTrain))
	}
	m.trainPt = trainPt
	m.yTrain = yTrain
	return nil
}

// Predict classifies every row of the query partition, which must have the
// same party layout as the training partition.
func (m *KNN) Predict(queryPt *dataset.Partition) ([]int, error) {
	if m.trainPt == nil {
		return nil, fmt.Errorf("ml: knn not fitted")
	}
	if queryPt.P() != m.trainPt.P() {
		return nil, fmt.Errorf("ml: knn partition layout mismatch: %d vs %d parties", queryPt.P(), m.trainPt.P())
	}
	nq := queryPt.Parties[0].Rows
	nTrain := len(m.yTrain)
	out := make([]int, nq)
	dist := make([]float64, nTrain)
	for q := 0; q < nq; q++ {
		for i := range dist {
			dist[i] = 0
		}
		var flops int64
		for p, party := range queryPt.Parties {
			qRow := party.Row(q)
			train := m.trainPt.Parties[p]
			for i := 0; i < nTrain; i++ {
				dist[i] += mat.SqDist(qRow, train.Row(i))
			}
			flops += int64(nTrain * party.Cols)
		}
		if m.Counts != nil {
			p := int64(queryPt.P())
			n := int64(nTrain)
			m.Counts.Add(costmodel.Raw{
				DistanceFlops: flops,
				Encryptions:   n * p,
				CipherAdds:    n * (p - 1),
				Decryptions:   n,
				ItemsSent:     n * (p + 1),
				Messages:      p + 1,
			})
		}
		votes := make([]float64, m.classes)
		for _, idx := range topk.KSmallest(dist, m.K) {
			votes[m.yTrain[idx]]++
		}
		out[q] = mat.ArgMax(votes)
	}
	return out, nil
}

// Name implements the downstream-model naming used by the harness.
func (m *KNN) Name() string { return "KNN" }
