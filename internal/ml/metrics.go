package ml

import "sort"

// ConfusionMatrix counts predictions: M[a][b] is the number of instances
// with true class a predicted as class b.
func ConfusionMatrix(pred, truth []int, classes int) [][]int {
	if len(pred) != len(truth) {
		panic("ml: ConfusionMatrix length mismatch")
	}
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range pred {
		m[truth[i]][pred[i]]++
	}
	return m
}

// ClassMetrics holds per-class precision/recall/F1.
type ClassMetrics struct {
	Precision, Recall, F1 float64
	Support               int
}

// PrecisionRecallF1 computes per-class metrics from predictions. Classes
// with zero predicted or true instances report zero for the undefined
// quantities.
func PrecisionRecallF1(pred, truth []int, classes int) []ClassMetrics {
	cm := ConfusionMatrix(pred, truth, classes)
	out := make([]ClassMetrics, classes)
	for c := 0; c < classes; c++ {
		tp := cm[c][c]
		var fp, fn int
		for o := 0; o < classes; o++ {
			if o == c {
				continue
			}
			fp += cm[o][c]
			fn += cm[c][o]
		}
		m := ClassMetrics{Support: tp + fn}
		if tp+fp > 0 {
			m.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall = float64(tp) / float64(tp+fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out[c] = m
	}
	return out
}

// MacroF1 averages per-class F1 scores.
func MacroF1(pred, truth []int, classes int) float64 {
	ms := PrecisionRecallF1(pred, truth, classes)
	var sum float64
	for _, m := range ms {
		sum += m.F1
	}
	return sum / float64(classes)
}

// AUC computes the area under the ROC curve for binary labels from
// positive-class scores, via the rank-statistic (Mann–Whitney) formulation
// with midranks for ties. Returns 0.5 when either class is absent.
func AUC(scores []float64, truth []int) float64 {
	if len(scores) != len(truth) {
		panic("ml: AUC length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // 1-based midrank
		for t := i; t <= j; t++ {
			ranks[idx[t]] = mid
		}
		i = j + 1
	}
	var rankSum float64
	pos, neg := 0, 0
	for i, y := range truth {
		if y == 1 {
			pos++
			rankSum += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}
