package ml

import (
	"fmt"
	"math"
	"sort"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
)

// GBDT is a vertical-federated gradient-boosted-trees classifier in the
// style of SecureBoost/VF2Boost (the tree-model line of work the paper's
// related-work section builds on): second-order boosting with logistic loss,
// histogram-based split finding, and XGBoost-style regularised gains. In the
// federated protocol the leader encrypts per-instance gradients and
// hessians, every participant aggregates them into per-feature histograms
// over its local bins, and the leader decrypts only the histograms to pick
// the global best split; Counts accounts exactly that exchange.
//
// Binary classification only (every dataset in the paper's Table III is
// binary).
type GBDT struct {
	cfg    GBDTConfig
	bias   float64 // initial log-odds
	trees  []gbTree
	nFeats []int // per-party feature counts, to validate Predict layouts
	// Counts, when non-nil, accumulates the federated training cost.
	Counts *costmodel.Counts
}

// GBDTConfig tunes training. Zero values take the listed defaults.
type GBDTConfig struct {
	Rounds        int     // boosting rounds (default 50)
	MaxDepth      int     // tree depth (default 3)
	LearningRate  float64 // shrinkage (default 0.1)
	Lambda        float64 // L2 regularisation on leaf weights (default 1.0)
	MinChildCount int     // minimum instances per leaf (default 8)
	Bins          int     // histogram bins per feature (default 16)
	// Patience stops boosting after this many rounds without validation
	// loss improvement (default 5; requires validation data in Fit).
	Patience int
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Lambda <= 0 {
		c.Lambda = 1.0
	}
	if c.MinChildCount <= 0 {
		c.MinChildCount = 8
	}
	if c.Bins <= 1 {
		c.Bins = 16
	}
	if c.Patience <= 0 {
		c.Patience = 5
	}
	return c
}

// gbNode is one node of a regression tree. Leaves have Feature == -1.
type gbNode struct {
	Feature   int // global feature id (party-major ordering)
	Threshold float64
	Left      int // child indices into the tree's node slice
	Right     int
	Weight    float64 // leaf output
}

type gbTree struct {
	Nodes []gbNode
}

func (t *gbTree) predict(row []float64) float64 {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return n.Weight
		}
		if row[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// NewGBDT builds an untrained model for the given configuration.
func NewGBDT(cfg GBDTConfig) *GBDT { return &GBDT{cfg: cfg.withDefaults()} }

// featureLayout flattens a partition's per-party features into global ids:
// party 0's features first, then party 1's, and so on.
func featureLayout(pt *dataset.Partition) (nFeats []int, total int) {
	for _, party := range pt.Parties {
		nFeats = append(nFeats, party.Cols)
		total += party.Cols
	}
	return nFeats, total
}

// jointRow materialises instance r's features in global ordering.
func jointRow(pt *dataset.Partition, r int, out []float64) []float64 {
	out = out[:0]
	for _, party := range pt.Parties {
		out = append(out, party.Row(r)...)
	}
	return out
}

// Fit trains the boosted ensemble. Validation data enables early stopping;
// pass nil/nil to train for the full round budget.
func (m *GBDT) Fit(trainPt *dataset.Partition, yTrain []int, valPt *dataset.Partition, yVal []int) error {
	if trainPt == nil || trainPt.P() == 0 {
		return fmt.Errorf("ml: gbdt needs a partition")
	}
	n := trainPt.Parties[0].Rows
	if n != len(yTrain) {
		return fmt.Errorf("ml: gbdt rows/labels mismatch")
	}
	for _, y := range yTrain {
		if y != 0 && y != 1 {
			return fmt.Errorf("ml: gbdt is binary; got label %d", y)
		}
	}
	m.nFeats, _ = featureLayout(trainPt)

	// Initial prediction: log-odds of the positive class.
	pos := 0
	for _, y := range yTrain {
		pos += y
	}
	if pos == 0 || pos == n {
		return fmt.Errorf("ml: gbdt training labels are single-class")
	}
	m.bias = math.Log(float64(pos) / float64(n-pos))
	m.trees = nil

	// Pre-bin every feature: per global feature, bin edges and per-instance
	// bin assignment (this is what participants hold locally).
	bins, binOf := m.buildBins(trainPt, n)

	// Current margins.
	margin := make([]float64, n)
	for i := range margin {
		margin[i] = m.bias
	}
	var valMargin []float64
	if valPt != nil && len(yVal) > 0 {
		valMargin = make([]float64, len(yVal))
		for i := range valMargin {
			valMargin[i] = m.bias
		}
	}
	bestValLoss := math.Inf(1)
	sinceBest := 0
	grad := make([]float64, n)
	hess := make([]float64, n)
	rowBuf := make([]float64, 0, 64)

	for round := 0; round < m.cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(margin[i])
			grad[i] = p - float64(yTrain[i])
			hess[i] = math.Max(p*(1-p), 1e-12)
		}
		m.chargeRound(trainPt, n)
		tree := m.growTree(trainPt, bins, binOf, grad, hess, n)
		m.trees = append(m.trees, tree)
		for i := 0; i < n; i++ {
			rowBuf = jointRow(trainPt, i, rowBuf)
			margin[i] += m.cfg.LearningRate * tree.predict(rowBuf)
		}
		if valMargin != nil {
			var loss float64
			for i := range yVal {
				rowBuf = jointRow(valPt, i, rowBuf)
				valMargin[i] += m.cfg.LearningRate * tree.predict(rowBuf)
				loss += logLoss(valMargin[i], yVal[i])
			}
			loss /= float64(len(yVal))
			if loss < bestValLoss-1e-9 {
				bestValLoss = loss
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= m.cfg.Patience {
					return nil
				}
			}
		}
	}
	return nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func logLoss(margin float64, y int) float64 {
	p := math.Min(math.Max(sigmoid(margin), 1e-12), 1-1e-12)
	if y == 1 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// buildBins computes per-feature histogram bin edges (equal-frequency) and
// each instance's bin index per feature.
func (m *GBDT) buildBins(pt *dataset.Partition, n int) (edges [][]float64, binOf [][]uint8) {
	_, total := featureLayout(pt)
	edges = make([][]float64, total)
	binOf = make([][]uint8, total)
	vals := make([]float64, n)
	g := 0
	for _, party := range pt.Parties {
		for f := 0; f < party.Cols; f++ {
			for i := 0; i < n; i++ {
				vals[i] = party.At(i, f)
			}
			sorted := append([]float64{}, vals...)
			sort.Float64s(sorted)
			e := make([]float64, 0, m.cfg.Bins-1)
			for b := 1; b < m.cfg.Bins; b++ {
				q := sorted[b*(n-1)/m.cfg.Bins]
				if len(e) == 0 || q > e[len(e)-1] {
					e = append(e, q)
				}
			}
			edges[g] = e
			assign := make([]uint8, n)
			for i := 0; i < n; i++ {
				assign[i] = uint8(sort.SearchFloat64s(e, vals[i]))
			}
			binOf[g] = assign
			g++
		}
	}
	return edges, binOf
}

// chargeRound accounts one boosting round of the SecureBoost-style exchange:
// the leader encrypts (g, h) for every instance, each party builds encrypted
// histograms (ciphertext additions) and ships F_p·bins·2 aggregates, and the
// leader decrypts them.
func (m *GBDT) chargeRound(pt *dataset.Partition, n int) {
	if m.Counts == nil {
		return
	}
	var histCells int64
	for _, party := range pt.Parties {
		histCells += int64(party.Cols * m.cfg.Bins * 2)
	}
	m.Counts.Add(costmodel.Raw{
		Encryptions: int64(2 * n),
		CipherAdds:  int64(2*n) * int64(len(pt.Parties)), // bin accumulation per party
		Decryptions: histCells,
		ItemsSent:   int64(2*n)*int64(len(pt.Parties)) + histCells,
		Messages:    int64(2 * len(pt.Parties)),
	})
}

// growTree builds one regression tree on (grad, hess) with histogram splits.
func (m *GBDT) growTree(pt *dataset.Partition, edges [][]float64, binOf [][]uint8, grad, hess []float64, n int) gbTree {
	tree := gbTree{}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	var build func(rows []int, depth int) int
	build = func(rows []int, depth int) int {
		var gSum, hSum float64
		for _, r := range rows {
			gSum += grad[r]
			hSum += hess[r]
		}
		leaf := func() int {
			tree.Nodes = append(tree.Nodes, gbNode{
				Feature: -1,
				Weight:  -gSum / (hSum + m.cfg.Lambda),
			})
			return len(tree.Nodes) - 1
		}
		if depth >= m.cfg.MaxDepth || len(rows) < 2*m.cfg.MinChildCount {
			return leaf()
		}
		bestGain := 0.0
		bestFeat, bestBin := -1, -1
		parentScore := gSum * gSum / (hSum + m.cfg.Lambda)
		gHist := make([]float64, m.cfg.Bins)
		hHist := make([]float64, m.cfg.Bins)
		cHist := make([]int, m.cfg.Bins)
		for f := range edges {
			for b := range gHist {
				gHist[b], hHist[b], cHist[b] = 0, 0, 0
			}
			assign := binOf[f]
			for _, r := range rows {
				b := assign[r]
				gHist[b] += grad[r]
				hHist[b] += hess[r]
				cHist[b]++
			}
			var gl, hl float64
			cl := 0
			for b := 0; b < len(edges[f]); b++ { // split after bin b
				gl += gHist[b]
				hl += hHist[b]
				cl += cHist[b]
				cr := len(rows) - cl
				if cl < m.cfg.MinChildCount || cr < m.cfg.MinChildCount {
					continue
				}
				gr := gSum - gl
				hr := hSum - hl
				gain := gl*gl/(hl+m.cfg.Lambda) + gr*gr/(hr+m.cfg.Lambda) - parentScore
				if gain > bestGain {
					bestGain, bestFeat, bestBin = gain, f, b
				}
			}
		}
		if bestFeat < 0 {
			return leaf()
		}
		threshold := edges[bestFeat][bestBin]
		var left, right []int
		assign := binOf[bestFeat]
		for _, r := range rows {
			if int(assign[r]) <= bestBin {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		idx := len(tree.Nodes)
		tree.Nodes = append(tree.Nodes, gbNode{Feature: bestFeat, Threshold: threshold})
		l := build(left, depth+1)
		r := build(right, depth+1)
		tree.Nodes[idx].Left = l
		tree.Nodes[idx].Right = r
		return idx
	}
	root := build(rows, 0)
	if root != 0 {
		// build always creates the root first, so this cannot happen; keep a
		// loud failure rather than silent mis-prediction.
		panic("ml: gbdt root not at index 0")
	}
	return tree
}

// Predict returns class predictions for every row of the partition, which
// must have the same per-party feature layout as the training partition.
func (m *GBDT) Predict(pt *dataset.Partition) ([]int, error) {
	if len(m.trees) == 0 && m.bias == 0 {
		return nil, fmt.Errorf("ml: gbdt not fitted")
	}
	if pt.P() != len(m.nFeats) {
		return nil, fmt.Errorf("ml: gbdt layout mismatch: %d vs %d parties", pt.P(), len(m.nFeats))
	}
	for p, party := range pt.Parties {
		if party.Cols != m.nFeats[p] {
			return nil, fmt.Errorf("ml: gbdt party %d has %d features, trained with %d", p, party.Cols, m.nFeats[p])
		}
	}
	n := pt.Parties[0].Rows
	out := make([]int, n)
	rowBuf := make([]float64, 0, 64)
	for i := 0; i < n; i++ {
		rowBuf = jointRow(pt, i, rowBuf)
		margin := m.bias
		for _, t := range m.trees {
			margin += m.cfg.LearningRate * t.predict(rowBuf)
		}
		if margin > 0 {
			out[i] = 1
		}
	}
	return out, nil
}

// Trees returns the number of fitted trees (early stopping may end below
// the configured round budget).
func (m *GBDT) Trees() int { return len(m.trees) }

// Name implements the downstream-model naming used by the harness.
func (m *GBDT) Name() string { return "GBDT" }
