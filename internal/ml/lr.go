package ml

import (
	"fmt"
	"math/rand"

	"vfps/internal/dataset"
	"vfps/internal/mat"
)

// LogisticRegression is the split logistic-regression model of §V-A: every
// participant holds one linear layer over its local features and the server
// sums the partial logits (plus a shared bias) into class scores.
type LogisticRegression struct {
	classes  int
	featDims []int // F_p per party
	buf      []float64
	weights  [][]float64 // per party: F_p×classes view into buf
	bias     []float64   // classes view into buf
}

// NewLogisticRegression shapes the model for a partition layout.
func NewLogisticRegression(pt *dataset.Partition, classes int, seed int64) (*LogisticRegression, error) {
	if pt == nil || pt.P() == 0 {
		return nil, fmt.Errorf("ml: logistic regression needs a partition")
	}
	if classes < 2 {
		return nil, fmt.Errorf("ml: need at least 2 classes, got %d", classes)
	}
	m := &LogisticRegression{classes: classes}
	total := classes
	for _, party := range pt.Parties {
		m.featDims = append(m.featDims, party.Cols)
		total += party.Cols * classes
	}
	m.buf = make([]float64, total)
	off := 0
	for _, f := range m.featDims {
		m.weights = append(m.weights, m.buf[off:off+f*classes])
		off += f * classes
	}
	m.bias = m.buf[off : off+classes]
	m.reinit(seed)
	return m, nil
}

func (m *LogisticRegression) params() []float64 { return m.buf }

func (m *LogisticRegression) reinit(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range m.buf {
		m.buf[i] = rng.NormFloat64() * 0.01
	}
	for i := range m.bias {
		m.bias[i] = 0
	}
}

func (m *LogisticRegression) parties() int { return len(m.featDims) }

// perSampleEncryptedScalars: each party ships `classes` partial logits per
// sample.
func (m *LogisticRegression) perSampleEncryptedScalars() int {
	return len(m.featDims) * m.classes
}

func (m *LogisticRegression) forward(pt *dataset.Partition, rows []int) *mat.Matrix {
	logits := mat.New(len(rows), m.classes)
	for i, r := range rows {
		out := logits.Row(i)
		copy(out, m.bias)
		for p, party := range pt.Parties {
			x := party.Row(r)
			w := m.weights[p]
			for f, xv := range x {
				if xv == 0 {
					continue
				}
				wRow := w[f*m.classes : (f+1)*m.classes]
				for c, wv := range wRow {
					out[c] += xv * wv
				}
			}
		}
	}
	return logits
}

func (m *LogisticRegression) backward(pt *dataset.Partition, rows []int, dLogits *mat.Matrix) []float64 {
	grads := make([]float64, len(m.buf))
	off := 0
	for p, party := range pt.Parties {
		f := m.featDims[p]
		gw := grads[off : off+f*m.classes]
		for i, r := range rows {
			x := party.Row(r)
			dl := dLogits.Row(i)
			for fi, xv := range x {
				if xv == 0 {
					continue
				}
				gRow := gw[fi*m.classes : (fi+1)*m.classes]
				for c, dv := range dl {
					gRow[c] += xv * dv
				}
			}
		}
		off += f * m.classes
	}
	gb := grads[off : off+m.classes]
	for i := 0; i < dLogits.Rows; i++ {
		for c, dv := range dLogits.Row(i) {
			gb[c] += dv
		}
	}
	return grads
}

// Fit trains with the shared protocol (grid search + early stopping).
func (m *LogisticRegression) Fit(trainPt *dataset.Partition, yTrain []int,
	valPt *dataset.Partition, yVal []int, cfg TrainConfig) (*FitReport, error) {
	return fitWithGrid(m, trainPt, yTrain, valPt, yVal, cfg)
}

// Predict returns argmax class predictions for every row of the partition.
func (m *LogisticRegression) Predict(pt *dataset.Partition) []int {
	n := pt.Parties[0].Rows
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	logits := m.forward(pt, rows)
	out := make([]int, n)
	for i := range out {
		out[i] = mat.ArgMax(logits.Row(i))
	}
	return out
}

// Name implements the downstream-model naming used by the harness.
func (m *LogisticRegression) Name() string { return "LR" }
