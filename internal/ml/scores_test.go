package ml

import (
	"math"
	"testing"
)

func TestAUCKnownValues(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); got != 1 {
		t.Fatalf("perfect AUC = %g", got)
	}
	// Fully inverted.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); got != 0 {
		t.Fatalf("inverted AUC = %g", got)
	}
	// All-tied scores: AUC = 0.5 via midranks.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %g", got)
	}
	// Single-class labels degrade to 0.5.
	if got := AUC([]float64{0.1, 0.9}, []int{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %g", got)
	}
	// Hand-computed: scores 0.1(0) 0.4(1) 0.35(1) 0.8(0)
	// pairs: (0.4 vs 0.1)=1, (0.4 vs 0.8)=0, (0.35 vs 0.1)=1, (0.35 vs 0.8)=0
	// AUC = 2/4 = 0.5.
	if got := AUC([]float64{0.1, 0.4, 0.35, 0.8}, []int{0, 1, 1, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("hand AUC = %g", got)
	}
}

func TestSoftmax2(t *testing.T) {
	if math.Abs(softmax2(0, 0)-0.5) > 1e-12 {
		t.Fatal("equal logits should give 0.5")
	}
	if softmax2(0, 10) < 0.99 || softmax2(10, 0) > 0.01 {
		t.Fatal("softmax2 direction wrong")
	}
}

func TestModelScoresGiveHighAUC(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, yTest := learnablePartition(t, "Rice", 700, 3)

	lr, _ := NewLogisticRegression(trainPt, 2, 7)
	if _, err := lr.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 10, LRGrid: []float64{0.01}, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	gb := NewGBDT(GBDTConfig{Rounds: 15})
	if err := gb.Fit(trainPt, yTr, valPt, yVal); err != nil {
		t.Fatal(err)
	}
	knn, _ := NewKNN(5, 2)
	if err := knn.Fit(trainPt, yTr); err != nil {
		t.Fatal(err)
	}
	for name, scoresFn := range map[string]func() ([]float64, error){
		"lr":   func() ([]float64, error) { return lr.PredictScores(testPt) },
		"gbdt": func() ([]float64, error) { return gb.PredictScores(testPt) },
		"knn":  func() ([]float64, error) { return knn.PredictScores(testPt) },
	} {
		scores, err := scoresFn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range scores {
			if s < 0 || s > 1 {
				t.Fatalf("%s: score %g out of [0,1]", name, s)
			}
		}
		if auc := AUC(scores, yTest); auc < 0.9 {
			t.Fatalf("%s: AUC %.3f too low on learnable data", name, auc)
		}
	}
}

func TestMLPScores(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, yTest := learnablePartition(t, "Rice", 500, 2)
	m, _ := NewMLP(trainPt, 2, 7)
	if _, err := m.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 8, LRGrid: []float64{0.01}, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictScores(testPt)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(scores, yTest); auc < 0.9 {
		t.Fatalf("MLP AUC %.3f too low", auc)
	}
	// Scores must agree with argmax predictions at the 0.5 threshold.
	pred := m.Predict(testPt)
	for i, s := range scores {
		want := 0
		if s > 0.5 {
			want = 1
		}
		if s != 0.5 && pred[i] != want {
			t.Fatalf("score %g disagrees with prediction %d", s, pred[i])
		}
	}
}

func TestPredictScoresValidation(t *testing.T) {
	knn, _ := NewKNN(3, 2)
	if _, err := knn.PredictScores(nil); err == nil {
		t.Fatal("expected not-fitted error")
	}
	if _, err := NewGBDT(GBDTConfig{}).PredictScores(nil); err == nil {
		t.Fatal("expected unfitted gbdt error")
	}
}
