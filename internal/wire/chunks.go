package wire

import "fmt"

// Chunk framing splits a ciphertext blob list into length-prefixed chunks so
// a response's packed vector can enter decryption chunk by chunk instead of
// behind a whole-payload barrier (the key holder pipelines parse/decrypt per
// chunk, see internal/he.DecryptPackedChunks). On the wire a chunked vector
// is one length-delimited field:
//
//	chunk list = uvarint chunk count | blob list*
//
// with each chunk a standard blob list (uvarint count | (uvarint len |
// bytes)*). The field rides a new tag on the v1 format, so gob and legacy v1
// peers that predate it keep whole-blob framing untouched — unknown tags are
// skipped by contract.

// ChunkCiphers splits blobs into chunks of roughly chunkBytes content each.
// Blobs are never split — a chunk grows past chunkBytes rather than straddle
// a blob across a boundary — and every chunk carries at least one blob. The
// returned chunks alias blobs. chunkBytes <= 0 or an empty list yields nil,
// the whole-blob framing.
func ChunkCiphers(blobs [][]byte, chunkBytes int) [][][]byte {
	if chunkBytes <= 0 || len(blobs) == 0 {
		return nil
	}
	var chunks [][][]byte
	start, size := 0, 0
	for i, b := range blobs {
		if i > start && size+len(b) > chunkBytes {
			chunks = append(chunks, blobs[start:i:i])
			start, size = i, 0
		}
		size += len(b)
	}
	return append(chunks, blobs[start:])
}

// FlattenChunks reassembles a chunk-framed vector into the flat blob list.
// An empty chunk is framing corruption — senders never produce one — and is
// rejected with the typed error instead of silently vanishing from the
// reassembled vector.
func FlattenChunks(chunks [][][]byte) ([][]byte, error) {
	total := 0
	for i, c := range chunks {
		if len(c) == 0 {
			return nil, fmt.Errorf("%w: empty chunk %d in chunk-framed vector", ErrCorrupt, i)
		}
		total += len(c)
	}
	out := make([][]byte, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// AppendChunks appends a chunk-framed blob list: uvarint chunk count, then
// each chunk as a blob list (AppendBlobs).
func AppendChunks(dst []byte, chunks [][][]byte) []byte {
	dst = AppendUvarint(dst, uint64(len(chunks)))
	for _, c := range chunks {
		dst = AppendBlobs(dst, c)
	}
	return dst
}

// ConsumeChunks reads a chunk-framed blob list from the front of data,
// returning the chunks (aliasing data) and the number of bytes consumed.
func ConsumeChunks(data []byte) ([][][]byte, int, error) {
	count, n, err := ConsumeUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	// Each chunk takes at least one byte (its blob count), so a chunk count
	// beyond the remaining bytes is corruption — reject before allocating.
	if count > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("%w: chunk count %d exceeds %d remaining bytes", ErrCorrupt, count, len(data)-n)
	}
	if count == 0 {
		return nil, n, nil
	}
	chunks := make([][][]byte, count)
	for i := range chunks {
		blobs, bn, err := ConsumeBlobs(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += bn
		chunks[i] = blobs
	}
	return chunks, n, nil
}

// Chunks encodes a chunk-framed ciphertext vector; empty is omitted. Blob
// content counts as payload; chunk and blob prefixes are framing, exactly as
// the unchunked Blobs field the chunks replace.
func (e *Encoder) Chunks(tag int, chunks [][][]byte) {
	if len(chunks) == 0 {
		return
	}
	e.key(tag, wtBytes)
	body := AppendChunks(nil, chunks)
	e.buf = AppendUvarint(e.buf, uint64(len(body)))
	e.buf = append(e.buf, body...)
	for _, c := range chunks {
		for _, b := range c {
			e.payload += int64(len(b))
		}
	}
}

// Chunks reads the current field as a chunk-framed blob list.
func (d *Decoder) Chunks() [][][]byte {
	if !d.want(wtBytes) {
		return nil
	}
	chunks, n, err := ConsumeChunks(d.b)
	if err != nil {
		d.fail(err)
		return nil
	}
	if n != len(d.b) {
		d.fail(fmt.Errorf("%w: %d trailing bytes after chunk list", ErrCorrupt, len(d.b)-n))
		return nil
	}
	return chunks
}
