package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

// envelopeMagic opens every binary-codec payload. Gob streams always start
// with a non-zero segment length, so the first byte alone separates the two
// codecs.
const envelopeMagic = 0x00

// MaxVersion is the newest binary protocol version this build speaks.
// Version 0 is reserved to mean "gob" in negotiation.
const MaxVersion uint64 = 1

// Codec serialises protocol messages. Implementations are stateless and safe
// for concurrent use.
type Codec interface {
	// Name is the knob value: "gob" or "binary".
	Name() string
	// Version is the negotiation number: 0 for gob, ≥1 for binary formats.
	Version() uint64
	// Marshal encodes v. A nil v yields the codec's empty payload (nil for
	// gob, a bare envelope for binary) so responses mirror the request
	// codec even for body-less methods.
	Marshal(v any) ([]byte, error)
	// Unmarshal decodes data produced by the same codec into v (a pointer).
	// A nil v discards the payload.
	Unmarshal(data []byte, v any) error
}

var (
	gobC    Codec = gobCodec{}
	binaryC Codec = binaryCodec{}
)

// Gob returns the compatibility codec wrapping encoding/gob.
func Gob() Codec { return gobC }

// Binary returns the v1 compact binary codec.
func Binary() Codec { return binaryC }

// ByName resolves a codec knob value ("gob" or "binary").
func ByName(name string) (Codec, error) {
	switch name {
	case "gob":
		return gobC, nil
	case "binary":
		return binaryC, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want gob or binary)", name)
	}
}

// ForVersion resolves a negotiated protocol version to its codec.
func ForVersion(v uint64) (Codec, error) {
	switch v {
	case 0:
		return gobC, nil
	case 1:
		return binaryC, nil
	default:
		return nil, &UnsupportedVersionError{Version: v, Max: MaxVersion}
	}
}

// Detect sniffs the codec of a payload accepting any version this build
// speaks. See DetectMax.
func Detect(data []byte) (Codec, error) { return DetectMax(data, MaxVersion) }

// DetectMax sniffs the codec of a payload, accepting binary envelopes up to
// the given version. Empty payloads and anything not starting with the
// envelope magic are gob (body-less methods send nil). An envelope from a
// newer version returns *UnsupportedVersionError — servers pass their own
// configured version so future formats are rejected, not misparsed.
func DetectMax(data []byte, maxVersion uint64) (Codec, error) {
	if len(data) == 0 || data[0] != envelopeMagic {
		return gobC, nil
	}
	v, _, err := ConsumeUvarint(data[1:])
	if err != nil {
		return nil, fmt.Errorf("wire: envelope: %w", err)
	}
	if v == 0 {
		return nil, fmt.Errorf("%w: envelope version 0", ErrCorrupt)
	}
	if v > maxVersion || v > MaxVersion {
		return nil, &UnsupportedVersionError{Version: v, Max: min(maxVersion, MaxVersion)}
	}
	return binaryC, nil
}

// Unmarshal decodes a payload whose codec is unknown, sniffing the envelope.
func Unmarshal(data []byte, v any) error {
	c, err := Detect(data)
	if err != nil {
		return err
	}
	return c.Unmarshal(data, v)
}

// MarshalMeasured encodes v with the codec and also reports the payload
// share: the value-content bytes (ciphertext/key blobs, 8 per float scalar)
// out of len(raw). The remainder is framing — envelope, field keys, length
// prefixes, ID lists, and for gob its type descriptors. costmodel charges
// the two shares to BytesSent and FramingBytes respectively.
func MarshalMeasured(c Codec, v any) (raw []byte, payload int64, err error) {
	raw, err = c.Marshal(v)
	if err != nil {
		return nil, 0, err
	}
	if m, ok := v.(Message); ok && v != nil {
		var e Encoder
		m.MarshalWire(&e)
		payload = e.Payload()
		if payload > int64(len(raw)) {
			// Defensive: framing must never go negative (cannot happen —
			// payload counts a subset of the encoded content under both
			// codecs, and gob encodes values wider than the binary codec).
			payload = int64(len(raw))
		}
	}
	return raw, payload, nil
}

// gobCodec wraps encoding/gob, the pre-wire format, behind the Codec
// interface. Version 0.
type gobCodec struct{}

func (gobCodec) Name() string    { return "gob" }
func (gobCodec) Version() uint64 { return 0 }

func (gobCodec) Marshal(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: gob encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func (gobCodec) Unmarshal(data []byte, v any) error {
	if v == nil {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("wire: gob decoding %T: %w", v, err)
	}
	return nil
}

// binaryCodec is format v1: envelope + tagged compact fields.
type binaryCodec struct{}

func (binaryCodec) Name() string    { return "binary" }
func (binaryCodec) Version() uint64 { return 1 }

func (binaryCodec) Marshal(v any) ([]byte, error) {
	head := []byte{envelopeMagic}
	head = binary.AppendUvarint(head, MaxVersion)
	if v == nil {
		return head, nil
	}
	m, ok := v.(Message)
	if !ok {
		return nil, fmt.Errorf("wire: %T does not implement wire.Message", v)
	}
	e := Encoder{buf: head}
	m.MarshalWire(&e)
	return e.buf, nil
}

func (binaryCodec) Unmarshal(data []byte, v any) error {
	if len(data) == 0 || data[0] != envelopeMagic {
		return fmt.Errorf("%w: missing binary envelope", ErrCorrupt)
	}
	ver, n, err := ConsumeUvarint(data[1:])
	if err != nil {
		return fmt.Errorf("wire: envelope: %w", err)
	}
	if ver != 1 {
		return &UnsupportedVersionError{Version: ver, Max: MaxVersion}
	}
	if v == nil {
		return nil
	}
	m, ok := v.(Message)
	if !ok {
		return fmt.Errorf("wire: %T does not implement wire.Message", v)
	}
	if err := m.UnmarshalWire(NewDecoder(data[1+n:])); err != nil {
		return fmt.Errorf("wire: decoding %T: %w", v, err)
	}
	return nil
}

// ---- version negotiation -------------------------------------------------
//
// Clients preferring the binary codec probe each peer once with a hello
// call; the peer answers with min(its version, the client's). A peer that
// does not serve hello at all (a pre-wire build) is assumed gob. Both hello
// messages are always framed as binary v1 regardless of either side's
// configured codec — the handshake is the bootstrap layer and every build
// that serves it speaks v1 framing.

// HelloMethod is the reserved method name for the negotiation probe.
const HelloMethod = "wire.hello"

// Hello is the probe: the caller's newest supported version.
type Hello struct{ Max uint64 }

// MarshalWire implements Message. Field 1: max version (uvarint).
func (h *Hello) MarshalWire(e *Encoder) { e.Uint(1, h.Max) }

// UnmarshalWire implements Message.
func (h *Hello) UnmarshalWire(d *Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			h.Max = d.Uint()
		}
	}
	return d.Err()
}

// HelloAck is the answer: the version the peer commits to for this caller
// (0 = gob).
type HelloAck struct{ Version uint64 }

// MarshalWire implements Message. Field 1: negotiated version (uvarint).
func (a *HelloAck) MarshalWire(e *Encoder) { e.Uint(1, a.Version) }

// UnmarshalWire implements Message.
func (a *HelloAck) UnmarshalWire(d *Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			a.Version = d.Uint()
		}
	}
	return d.Err()
}

// MarshalHello encodes the probe for the given preferred version.
func MarshalHello(maxVersion uint64) []byte {
	raw, err := binaryC.Marshal(&Hello{Max: maxVersion})
	if err != nil { // cannot happen: Hello implements Message
		panic(err)
	}
	return raw
}

// ParseHelloAck extracts the committed version from a hello response.
func ParseHelloAck(raw []byte) (uint64, error) {
	var a HelloAck
	if err := binaryC.Unmarshal(raw, &a); err != nil {
		return 0, fmt.Errorf("wire: hello ack: %w", err)
	}
	return a.Version, nil
}

// HandleHello serves the negotiation probe for a node whose configured codec
// has the given version (0 when the node is configured for gob).
func HandleHello(req []byte, localVersion uint64) ([]byte, error) {
	var h Hello
	if err := binaryC.Unmarshal(req, &h); err != nil {
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	return binaryC.Marshal(&HelloAck{Version: min(h.Max, localVersion)})
}
