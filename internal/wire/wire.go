// Package wire is the versioned, self-describing compact binary codec for
// the VFL protocol messages, plus the gob compatibility codec behind the
// same interface.
//
// Why it exists: after slot packing cut ciphertext volume ~15×, the gob
// envelope and raw pseudo-ID lists became a leading share of BytesSent
// (ROADMAP "Wire framing overhead"). The binary codec replaces gob's
// per-stream type descriptors and 8-byte ints with uvarint framing, zigzag
// varints, delta-coded pseudo-ID lists and length-prefixed ciphertext blobs.
//
// Format v1 (pinned by golden tests in golden_test.go):
//
//	payload   = envelope body
//	envelope  = 0x00 magic | uvarint version | body
//	body      = field*
//	field     = uvarint key | value            key = tag<<3 | wiretype
//	wiretype  = 0 varint (zigzag when signed), 1 fixed64 (float bits, LE),
//	            2 length-delimited bytes (uvarint length | raw bytes)
//	ID list   = wiretype 2: uvarint count | zigzag delta from previous id*
//	blob list = wiretype 2: uvarint count | (uvarint len | bytes)*
//
// Zero-valued fields are omitted; decoders treat absent fields as zero and
// skip unknown tags, so fields can be added in later versions without
// breaking v1 peers (forward-compatible tags). A gob stream can never begin
// with byte 0x00 (gob's leading segment length is never zero), so the
// envelope magic makes every payload self-describing: Detect sniffs the
// codec from the first byte and mixed-codec clusters interoperate without
// per-connection state.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Typed decode errors. All corruption detected by the decoder unwraps to one
// of these, so callers can distinguish malformed input from version skew
// (*UnsupportedVersionError).
var (
	// ErrTruncated reports input that ends mid-value.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrOverflow reports a varint wider than 64 bits.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrWireType reports a field read with the wrong accessor for its
	// encoded wire type (schema mismatch).
	ErrWireType = errors.New("wire: field has unexpected wire type")
	// ErrCorrupt reports structurally invalid encoding: a bad wire type,
	// an element count exceeding the enclosing field, or a zero envelope
	// version.
	ErrCorrupt = errors.New("wire: corrupt encoding")
)

// UnsupportedVersionError reports an envelope from a protocol version newer
// than this node accepts. It is the typed rejection required for mixed
// clusters: a future-version payload must fail loudly, never be misparsed.
type UnsupportedVersionError struct {
	Version uint64 // version found in the envelope
	Max     uint64 // highest version this node accepts
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("wire: unsupported protocol version %d (max %d)", e.Version, e.Max)
}

// Wire types.
const (
	wtVarint  = 0 // uvarint, or zigzag uvarint for signed fields
	wtFixed64 = 1 // 8 bytes little-endian (float64 bits)
	wtBytes   = 2 // uvarint length | raw bytes
)

// Zigzag maps a signed value to an unsigned one with small absolute values
// staying small: 0,-1,1,-2,... → 0,1,2,3,...
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends v in base-128 varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ConsumeUvarint reads one uvarint from the front of data, returning the
// value and the number of bytes consumed.
func ConsumeUvarint(data []byte) (uint64, int, error) {
	v, n := binary.Uvarint(data)
	switch {
	case n > 0:
		return v, n, nil
	case n == 0:
		return 0, 0, ErrTruncated
	default:
		return 0, 0, ErrOverflow
	}
}

// AppendIDs appends a delta-coded pseudo-ID list: uvarint count, then each
// id as a zigzag delta from the previous one (the first from 0). Sorted or
// near-sorted lists — the common case for pseudo-ID batches — encode in one
// or two bytes per id instead of gob's full integers.
func AppendIDs(dst []byte, ids []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	prev := 0
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, Zigzag(int64(id-prev)))
		prev = id
	}
	return dst
}

// ConsumeIDs reads a delta-coded ID list from the front of data, returning
// the ids and the number of bytes consumed.
func ConsumeIDs(data []byte) ([]int, int, error) {
	count, n, err := ConsumeUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	// Each delta takes at least one byte, so a count beyond the remaining
	// bytes is corruption — reject before allocating.
	if count > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("%w: id count %d exceeds %d remaining bytes", ErrCorrupt, count, len(data)-n)
	}
	if count == 0 {
		return nil, n, nil
	}
	ids := make([]int, count)
	prev := 0
	for i := range ids {
		d, dn, err := ConsumeUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += dn
		prev += int(Unzigzag(d))
		ids[i] = prev
	}
	return ids, n, nil
}

// AppendBlobs appends a length-prefixed blob list (ciphertexts, key
// material): uvarint count, then uvarint length | raw bytes per entry.
func AppendBlobs(dst []byte, blobs [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(blobs)))
	for _, b := range blobs {
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

// ConsumeBlobs reads a blob list from the front of data, returning the blobs
// (aliasing data) and the number of bytes consumed.
func ConsumeBlobs(data []byte) ([][]byte, int, error) {
	count, n, err := ConsumeUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("%w: blob count %d exceeds %d remaining bytes", ErrCorrupt, count, len(data)-n)
	}
	if count == 0 {
		return nil, n, nil
	}
	blobs := make([][]byte, count)
	for i := range blobs {
		size, sn, err := ConsumeUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += sn
		if size > uint64(len(data)-n) {
			return nil, 0, fmt.Errorf("%w: blob length %d exceeds %d remaining bytes", ErrCorrupt, size, len(data)-n)
		}
		blobs[i] = data[n : n+int(size) : n+int(size)]
		n += int(size)
	}
	return blobs, n, nil
}
