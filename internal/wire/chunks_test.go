package wire

import (
	"bytes"
	"errors"
	"testing"
)

func chunksEqual(a, b [][][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !bytes.Equal(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestChunkCiphers(t *testing.T) {
	blob := func(n int) []byte { return bytes.Repeat([]byte{0xAB}, n) }
	cases := []struct {
		name       string
		blobs      [][]byte
		chunkBytes int
		want       []int // blobs per chunk
	}{
		{"off", [][]byte{blob(4)}, 0, nil},
		{"empty", nil, 16, nil},
		{"all-fit", [][]byte{blob(3), blob(3)}, 16, []int{2}},
		{"split", [][]byte{blob(8), blob(8), blob(8)}, 16, []int{2, 1}},
		{"oversize-blob", [][]byte{blob(64), blob(2)}, 16, []int{1, 1}},
		{"one-per-chunk", [][]byte{blob(8), blob(8)}, 8, []int{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks := ChunkCiphers(tc.blobs, tc.chunkBytes)
			if len(chunks) != len(tc.want) {
				t.Fatalf("got %d chunks, want %d", len(chunks), len(tc.want))
			}
			var flat [][]byte
			for i, c := range chunks {
				if len(c) != tc.want[i] {
					t.Fatalf("chunk %d has %d blobs, want %d", i, len(c), tc.want[i])
				}
				flat = append(flat, c...)
			}
			if len(tc.want) == 0 {
				return
			}
			if len(flat) != len(tc.blobs) {
				t.Fatalf("chunks carry %d blobs, want %d", len(flat), len(tc.blobs))
			}
			back, err := FlattenChunks(chunks)
			if err != nil {
				t.Fatalf("FlattenChunks: %v", err)
			}
			for i := range tc.blobs {
				if !bytes.Equal(back[i], tc.blobs[i]) {
					t.Fatalf("blob %d altered by chunk round trip", i)
				}
			}
		})
	}
}

func TestFlattenChunksRejectsEmptyChunk(t *testing.T) {
	_, err := FlattenChunks([][][]byte{{[]byte("a")}, {}})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty chunk: got %v, want ErrCorrupt", err)
	}
}

func TestChunksRoundTrip(t *testing.T) {
	cases := [][][][]byte{
		{{[]byte("one")}},
		{{[]byte("a"), []byte("bb")}, {[]byte("ccc")}},
		{{nil, []byte{}}, {[]byte("x")}}, // delta-trimmed placeholders survive
	}
	for i, chunks := range cases {
		buf := AppendChunks(nil, chunks)
		back, n, err := ConsumeChunks(buf)
		if err != nil {
			t.Fatalf("case %d: ConsumeChunks: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !chunksEqual(chunks, back) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestConsumeChunksMalformed(t *testing.T) {
	good := AppendChunks(nil, [][][]byte{{[]byte("abcd")}, {[]byte("efgh")}})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-count", []byte{0x80}},
		{"count-overruns", []byte{0xFF, 0x01}}, // claims 255 chunks, 0 bytes left
		{"truncated-chunk", good[:len(good)-3]},
		{"truncated-blob-count", good[:1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ConsumeChunks(tc.data)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got untyped error %v", err)
			}
		})
	}
}

// TestEncoderChunksField exercises the tagged-field layer: payload accounting
// counts blob content only, empty vectors are omitted, and a decoder that
// does not know the tag skips it cleanly.
func TestEncoderChunksField(t *testing.T) {
	chunks := [][][]byte{{[]byte("abcd"), []byte("ef")}, {[]byte("ghij")}}
	var e Encoder
	e.Chunks(1, chunks)
	e.Uint(2, 7)
	if got := e.Payload(); got != 10 {
		t.Fatalf("payload accounting: got %d, want 10 (blob content only)", got)
	}

	d := NewDecoder(e.buf)
	if !d.Next() || d.Tag() != 1 {
		t.Fatalf("first field: next=%v tag=%d err=%v", false, d.Tag(), d.Err())
	}
	back := d.Chunks()
	if !chunksEqual(chunks, back) {
		t.Fatal("chunk field round trip mismatch")
	}
	if !d.Next() || d.Tag() != 2 || d.Uint() != 7 {
		t.Fatalf("trailing field lost after chunks: err=%v", d.Err())
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// Unknown-tag skip: a decoder that never calls Chunks() must step over the
	// field and still read the trailing uint — the legacy-peer contract.
	d2 := NewDecoder(e.buf)
	for d2.Next() {
		if d2.Tag() == 2 {
			if d2.Uint() != 7 {
				t.Fatal("trailing field corrupted by skipped chunk field")
			}
		}
	}
	if err := d2.Err(); err != nil {
		t.Fatalf("skip decode: %v", err)
	}

	var empty Encoder
	empty.Chunks(1, nil)
	if empty.Len() != 0 {
		t.Fatal("empty chunk vector must be omitted")
	}
}

func TestDecoderChunksTrailingBytes(t *testing.T) {
	body := AppendChunks(nil, [][][]byte{{[]byte("ab")}})
	body = append(body, 0xEE) // trailing garbage inside the field body
	var e Encoder
	e.Bytes(1, body)
	d := NewDecoder(e.buf)
	if !d.Next() {
		t.Fatalf("next: %v", d.Err())
	}
	if d.Chunks() != nil {
		t.Fatal("trailing bytes accepted")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", d.Err())
	}
}

// FuzzChunkedCiphertext is the make-check smoke target for chunk framing:
// arbitrary bytes must never panic the chunk reader — truncated or malformed
// streams surface typed errors — and whatever decodes must round-trip.
func FuzzChunkedCiphertext(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendChunks(nil, [][][]byte{{[]byte("abc")}, {[]byte("d"), nil}}))
	f.Add(AppendChunks(nil, ChunkCiphers([][]byte{
		bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32), []byte{3},
	}, 40)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks, n, err := ConsumeChunks(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrOverflow) {
				t.Fatalf("untyped error from malformed stream: %v", err)
			}
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		buf := AppendChunks(nil, chunks)
		back, _, err := ConsumeChunks(buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !chunksEqual(chunks, back) {
			t.Fatal("round trip mismatch")
		}
	})
}

// TestChunkedFieldTruncations drives the field-level decoder over every prefix
// of a valid chunked message; no prefix may panic, and every failing prefix
// must fail typed.
func TestChunkedFieldTruncations(t *testing.T) {
	var e Encoder
	e.Chunks(3, [][][]byte{{[]byte("abcdefgh")}, {[]byte("ij"), []byte("kl")}})
	full := e.buf
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		for d.Next() {
			d.Chunks()
		}
		if err := d.Err(); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrWireType) {
				t.Fatalf("cut %d: untyped error %v", cut, err)
			}
		}
	}
}
