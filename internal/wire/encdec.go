package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message is a protocol struct that knows its own v1 field layout. Encoding
// cannot fail (MarshalWire only appends); decoding returns the decoder's
// sticky error.
type Message interface {
	MarshalWire(e *Encoder)
	UnmarshalWire(d *Decoder) error
}

// Encoder appends tagged fields to a buffer. Zero-valued fields are omitted
// entirely — decoders default absent fields to zero — which keeps small
// requests at a handful of bytes.
//
// The encoder also tallies payload bytes: the value content a message
// fundamentally has to move (ciphertext and key blobs, 8 bytes per float
// scalar). Everything else — keys, length prefixes, ID lists, the envelope —
// is framing. The costmodel splits BytesSent/FramingBytes along exactly this
// line.
type Encoder struct {
	buf     []byte
	payload int64
}

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Payload returns the value-content byte tally (see type comment).
func (e *Encoder) Payload() int64 { return e.payload }

func (e *Encoder) key(tag, wt int) {
	e.buf = binary.AppendUvarint(e.buf, uint64(tag)<<3|uint64(wt))
}

// Uint encodes an unsigned field; zero is omitted.
func (e *Encoder) Uint(tag int, v uint64) {
	if v == 0 {
		return
	}
	e.key(tag, wtVarint)
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Int encodes a signed field as a zigzag varint; zero is omitted.
func (e *Encoder) Int(tag int, v int64) {
	if v == 0 {
		return
	}
	e.key(tag, wtVarint)
	e.buf = binary.AppendUvarint(e.buf, Zigzag(v))
}

// Float encodes a float64 as its raw bits (bit-exact round trip); +0 is
// omitted. Counted as 8 payload bytes.
func (e *Encoder) Float(tag int, v float64) {
	bits := math.Float64bits(v)
	if bits == 0 {
		return
	}
	e.key(tag, wtFixed64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, bits)
	e.payload += 8
}

// Bytes encodes an opaque blob (key material, a single ciphertext); empty is
// omitted. Counted as payload.
func (e *Encoder) Bytes(tag int, b []byte) {
	if len(b) == 0 {
		return
	}
	e.key(tag, wtBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
	e.payload += int64(len(b))
}

// String encodes a text field (scheme names and such — protocol metadata,
// so framing, not payload); empty is omitted.
func (e *Encoder) String(tag int, s string) {
	if s == "" {
		return
	}
	e.key(tag, wtBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// IDs encodes a delta-coded pseudo-ID list; empty is omitted. ID lists are
// framing: they address payload, they aren't payload.
func (e *Encoder) IDs(tag int, ids []int) {
	if len(ids) == 0 {
		return
	}
	e.key(tag, wtBytes)
	body := AppendIDs(nil, ids)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(body)))
	e.buf = append(e.buf, body...)
}

// Blobs encodes a length-prefixed blob list (ciphertext vectors); empty is
// omitted. Blob content counts as payload, the prefixes as framing.
func (e *Encoder) Blobs(tag int, blobs [][]byte) {
	if len(blobs) == 0 {
		return
	}
	e.key(tag, wtBytes)
	body := AppendBlobs(nil, blobs)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(body)))
	e.buf = append(e.buf, body...)
	for _, b := range blobs {
		e.payload += int64(len(b))
	}
}

// Msg encodes a nested message as a length-delimited sub-body; a nested
// message that encodes to nothing (all zero fields) is omitted.
func (e *Encoder) Msg(tag int, m Message) {
	if m == nil {
		return
	}
	var child Encoder
	m.MarshalWire(&child)
	if len(child.buf) == 0 {
		return
	}
	e.key(tag, wtBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(child.buf)))
	e.buf = append(e.buf, child.buf...)
	e.payload += child.payload
}

// Decoder walks tagged fields with a sticky error. The idiomatic loop:
//
//	for d.Next() {
//		switch d.Tag() {
//		case 1: r.Query = int(d.Int())
//		case 2: r.Ciphers = d.Blobs()
//		}
//	}
//	return d.Err()
//
// Next consumes a whole field each step, so unknown tags are skipped simply
// by not reading them — that is the forward-compatibility contract. Typed
// accessors check the wire type and poison the decoder on mismatch. Returned
// slices alias the input buffer.
type Decoder struct {
	data []byte
	pos  int
	err  error

	tag int
	wt  int
	u   uint64 // varint / fixed64 raw value
	b   []byte // length-delimited value
}

// NewDecoder decodes the given body (envelope already stripped).
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Tag returns the tag of the field read by the last Next.
func (d *Decoder) Tag() int { return d.tag }

// Next advances to the next field, consuming its value. It returns false at
// end of input or on error (check Err).
func (d *Decoder) Next() bool {
	if d.err != nil || d.pos >= len(d.data) {
		return false
	}
	key, n, err := ConsumeUvarint(d.data[d.pos:])
	if err != nil {
		d.fail(err)
		return false
	}
	d.pos += n
	d.tag = int(key >> 3)
	d.wt = int(key & 7)
	d.b = nil
	switch d.wt {
	case wtVarint:
		v, n, err := ConsumeUvarint(d.data[d.pos:])
		if err != nil {
			d.fail(err)
			return false
		}
		d.pos += n
		d.u = v
	case wtFixed64:
		if len(d.data)-d.pos < 8 {
			d.fail(ErrTruncated)
			return false
		}
		d.u = binary.LittleEndian.Uint64(d.data[d.pos:])
		d.pos += 8
	case wtBytes:
		size, n, err := ConsumeUvarint(d.data[d.pos:])
		if err != nil {
			d.fail(err)
			return false
		}
		d.pos += n
		if size > uint64(len(d.data)-d.pos) {
			d.fail(fmt.Errorf("%w: field length %d exceeds %d remaining bytes", ErrCorrupt, size, len(d.data)-d.pos))
			return false
		}
		d.b = d.data[d.pos : d.pos+int(size) : d.pos+int(size)]
		d.pos += int(size)
	default:
		d.fail(fmt.Errorf("%w: wire type %d for tag %d", ErrCorrupt, d.wt, d.tag))
		return false
	}
	return true
}

func (d *Decoder) want(wt int) bool {
	if d.err != nil {
		return false
	}
	if d.wt != wt {
		d.fail(fmt.Errorf("%w: tag %d has wire type %d, want %d", ErrWireType, d.tag, d.wt, wt))
		return false
	}
	return true
}

// Uint reads the current field as an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if !d.want(wtVarint) {
		return 0
	}
	return d.u
}

// Int reads the current field as a zigzag varint.
func (d *Decoder) Int() int64 {
	if !d.want(wtVarint) {
		return 0
	}
	return Unzigzag(d.u)
}

// Float reads the current field as a fixed64 float.
func (d *Decoder) Float() float64 {
	if !d.want(wtFixed64) {
		return 0
	}
	return math.Float64frombits(d.u)
}

// Bytes reads the current field as an opaque blob (aliases the input).
func (d *Decoder) Bytes() []byte {
	if !d.want(wtBytes) {
		return nil
	}
	return d.b
}

// String reads the current field as text.
func (d *Decoder) String() string {
	if !d.want(wtBytes) {
		return ""
	}
	return string(d.b)
}

// IDs reads the current field as a delta-coded pseudo-ID list.
func (d *Decoder) IDs() []int {
	if !d.want(wtBytes) {
		return nil
	}
	ids, n, err := ConsumeIDs(d.b)
	if err != nil {
		d.fail(err)
		return nil
	}
	if n != len(d.b) {
		d.fail(fmt.Errorf("%w: %d trailing bytes after id list", ErrCorrupt, len(d.b)-n))
		return nil
	}
	return ids
}

// Blobs reads the current field as a length-prefixed blob list.
func (d *Decoder) Blobs() [][]byte {
	if !d.want(wtBytes) {
		return nil
	}
	blobs, n, err := ConsumeBlobs(d.b)
	if err != nil {
		d.fail(err)
		return nil
	}
	if n != len(d.b) {
		d.fail(fmt.Errorf("%w: %d trailing bytes after blob list", ErrCorrupt, len(d.b)-n))
		return nil
	}
	return blobs
}

// Msg decodes the current field as a nested message.
func (d *Decoder) Msg(m Message) {
	if !d.want(wtBytes) {
		return
	}
	if err := m.UnmarshalWire(NewDecoder(d.b)); err != nil {
		d.fail(err)
	}
}
