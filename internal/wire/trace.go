package wire

import "encoding/binary"

// Trace context rides the v1 envelope as one reserved tagged field appended
// after the message's own fields. Decoders skip unknown tags (the Decoder
// consumes a whole field per Next), so a peer that predates the field — or
// any message's UnmarshalWire loop — ignores it without error; that is the
// same forward-compatibility contract new message fields rely on. Gob
// payloads never carry it: the gob fallback has no tag space to hide it in,
// and a gob peer is by definition a pre-trace build.
//
// Field value layout (TraceTag, wire type 2):
//
//	bytes 0..15   trace ID, big-endian (128-bit)
//	bytes 16..23  parent span ID, big-endian (64-bit)
//	bytes 24..    query/tenant ID, UTF-8 (may be empty)

// TraceTag is the reserved field tag carrying trace context. Message tags are
// append-only small integers; 2000 leaves them unbounded room while still
// encoding as a two-byte field key.
const TraceTag = 2000

// traceFixed is the fixed prefix of the field value: trace ID + span ID.
const traceFixed = 16 + 8

// TraceContext is the cross-process call identity: which trace the request
// belongs to, which caller span it descends from, and the query/tenant ID
// being charged.
type TraceContext struct {
	Trace [16]byte
	Span  uint64
	Query string
}

// IsZero reports whether there is nothing to propagate.
func (tc TraceContext) IsZero() bool {
	return tc.Trace == [16]byte{} && tc.Span == 0 && tc.Query == ""
}

// AppendTraceContext appends the trace-context field to an encoded binary v1
// payload. Payloads that are not binary envelopes (gob) are returned
// unchanged, as is a zero context.
func AppendTraceContext(raw []byte, tc TraceContext) []byte {
	if len(raw) == 0 || raw[0] != envelopeMagic || tc.IsZero() {
		return raw
	}
	raw = binary.AppendUvarint(raw, uint64(TraceTag)<<3|uint64(wtBytes))
	raw = binary.AppendUvarint(raw, uint64(traceFixed+len(tc.Query)))
	raw = append(raw, tc.Trace[:]...)
	raw = binary.BigEndian.AppendUint64(raw, tc.Span)
	return append(raw, tc.Query...)
}

// ExtractTraceContext scans a binary envelope for the trace-context field.
// It never fails: malformed payloads, gob payloads and envelopes without the
// field all report ok=false and leave error surfacing to the real message
// decode.
func ExtractTraceContext(data []byte) (TraceContext, bool) {
	var tc TraceContext
	if len(data) == 0 || data[0] != envelopeMagic {
		return tc, false
	}
	v, n, err := ConsumeUvarint(data[1:])
	if err != nil || v == 0 {
		return tc, false
	}
	d := NewDecoder(data[1+n:])
	for d.Next() {
		if d.Tag() != TraceTag {
			continue
		}
		b := d.Bytes()
		if d.Err() != nil || len(b) < traceFixed {
			return TraceContext{}, false
		}
		copy(tc.Trace[:], b[:16])
		tc.Span = binary.BigEndian.Uint64(b[16:traceFixed])
		tc.Query = string(b[traceFixed:])
		return tc, !tc.IsZero()
	}
	return tc, false
}
