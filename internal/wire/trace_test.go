package wire

import (
	"bytes"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	base, err := Binary().Marshal(&Hello{Max: 7})
	if err != nil {
		t.Fatal(err)
	}
	tc := TraceContext{Span: 0x1122334455667788, Query: "q-deadbeef"}
	for i := range tc.Trace {
		tc.Trace[i] = byte(i + 1)
	}
	raw := AppendTraceContext(append([]byte(nil), base...), tc)
	if bytes.Equal(raw, base) {
		t.Fatal("trace field was not appended")
	}

	// A v1 peer that predates the field must decode the message unchanged:
	// the reserved tag is skipped like any unknown field.
	var h Hello
	if err := Binary().Unmarshal(raw, &h); err != nil {
		t.Fatalf("decoding with trace field: %v", err)
	}
	if h.Max != 7 {
		t.Fatalf("Hello.Max = %d, want 7", h.Max)
	}

	got, ok := ExtractTraceContext(raw)
	if !ok {
		t.Fatal("trace context not extracted")
	}
	if got != tc {
		t.Fatalf("extracted %+v, want %+v", got, tc)
	}

	// Empty query is valid: only trace/span propagate.
	tc.Query = ""
	raw = AppendTraceContext(append([]byte(nil), base...), tc)
	if got, ok := ExtractTraceContext(raw); !ok || got != tc {
		t.Fatalf("queryless context: ok=%v got=%+v", ok, got)
	}
}

func TestTraceContextNonEnvelopePayloadsUntouched(t *testing.T) {
	tc := TraceContext{Span: 1}
	tc.Trace[0] = 1

	// Gob payloads never start with the envelope magic; they must pass
	// through unchanged and extract nothing.
	gob, err := Gob().Marshal(&Hello{Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out := AppendTraceContext(append([]byte(nil), gob...), tc); !bytes.Equal(out, gob) {
		t.Fatal("gob payload was modified")
	}
	if _, ok := ExtractTraceContext(gob); ok {
		t.Fatal("extracted trace context from a gob payload")
	}

	// A zero context is never appended.
	base, err := Binary().Marshal(&Hello{Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out := AppendTraceContext(append([]byte(nil), base...), TraceContext{}); !bytes.Equal(out, base) {
		t.Fatal("zero context was appended")
	}
	if _, ok := ExtractTraceContext(base); ok {
		t.Fatal("extracted trace context from a payload without the field")
	}
}

func TestTraceContextMalformedFieldIgnored(t *testing.T) {
	base, err := Binary().Marshal(&Hello{Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A trace field shorter than the fixed trace+span prefix must be
	// rejected quietly, not panic or misparse.
	raw := AppendUvarint(append([]byte(nil), base...), uint64(TraceTag)<<3|uint64(wtBytes))
	raw = AppendUvarint(raw, 5)
	raw = append(raw, 1, 2, 3, 4, 5)
	if _, ok := ExtractTraceContext(raw); ok {
		t.Fatal("extracted a truncated trace field")
	}
	// Truncated payloads of any shape report ok=false.
	for i := 0; i < len(raw); i++ {
		_, _ = ExtractTraceContext(raw[:i])
	}
}
