package wire

import (
	"bytes"
	"testing"
)

// FuzzWire is the make-check smoke target: arbitrary bytes must never panic
// the field decoder, and whatever decodes must re-encode canonically.
func FuzzWire(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01})
	f.Add(MarshalHello(1))
	var seed Encoder
	(&allFields{U: 3, I: -9, F: 2.5, B: []byte("b"), S: "s", IDs: []int{5, 1}, BB: [][]byte{[]byte("x")}}).MarshalWire(&seed)
	f.Add(seed.buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m allFields
		if err := m.UnmarshalWire(NewDecoder(data)); err != nil {
			return // corrupt input rejected is fine; panics are not
		}
		// Canonical property: decode → encode → decode is a fixed point.
		var e Encoder
		m.MarshalWire(&e)
		var m2 allFields
		if err := m2.UnmarshalWire(NewDecoder(e.buf)); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		var e2 Encoder
		m2.MarshalWire(&e2)
		if !bytes.Equal(e.buf, e2.buf) {
			t.Fatalf("re-encode not canonical: %x vs %x", e.buf, e2.buf)
		}
	})
}

// FuzzVarint checks ConsumeUvarint total safety and round-trip identity.
func FuzzVarint(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(300))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, v uint64) {
		buf := AppendUvarint(nil, v)
		got, n, err := ConsumeUvarint(buf)
		if err != nil || got != v || n != len(buf) {
			t.Fatalf("round trip %d: got %d n=%d err=%v", v, got, n, err)
		}
	})
}

// FuzzZigzag checks the signed mapping is a bijection.
func FuzzZigzag(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(int64(1) << 62)
	f.Fuzz(func(t *testing.T, v int64) {
		if got := Unzigzag(Zigzag(v)); got != v {
			t.Fatalf("Unzigzag(Zigzag(%d)) = %d", v, got)
		}
	})
}

// FuzzDeltaIDs feeds arbitrary bytes to the ID-list reader (no panics, no
// over-allocation) and checks accepted lists round-trip.
func FuzzDeltaIDs(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendIDs(nil, []int{1, 2, 3}))
	f.Add(AppendIDs(nil, []int{1000, -4, 7}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, n, err := ConsumeIDs(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		buf := AppendIDs(nil, ids)
		back, _, err := ConsumeIDs(buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back) != len(ids) {
			t.Fatalf("round trip length %d != %d", len(back), len(ids))
		}
		for i := range ids {
			if back[i] != ids[i] {
				t.Fatalf("id %d: %d != %d", i, back[i], ids[i])
			}
		}
	})
}
