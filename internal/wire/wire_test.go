package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := Unzigzag(Zigzag(v)); got != v {
			t.Errorf("Unzigzag(Zigzag(%d)) = %d", v, got)
		}
	}
	// Small absolute values must stay small on the wire.
	for v, want := range map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4} {
		if got := Zigzag(v); got != want {
			t.Errorf("Zigzag(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64} {
		buf := AppendUvarint(nil, v)
		got, n, err := ConsumeUvarint(buf)
		if err != nil || got != v || n != len(buf) {
			t.Errorf("ConsumeUvarint(AppendUvarint(%d)) = %d, %d, %v", v, got, n, err)
		}
	}
	if _, _, err := ConsumeUvarint(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty uvarint: got %v, want ErrTruncated", err)
	}
	if _, _, err := ConsumeUvarint([]byte{0x80}); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut uvarint: got %v, want ErrTruncated", err)
	}
	over := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := ConsumeUvarint(over); !errors.Is(err, ErrOverflow) {
		t.Errorf("wide uvarint: got %v, want ErrOverflow", err)
	}
}

func TestIDsRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{42},
		{1, 2, 3, 4, 5},
		{100, 90, 105, 3, -7},
		{-1, -2, -3},
	}
	for _, ids := range cases {
		buf := AppendIDs(nil, ids)
		got, n, err := ConsumeIDs(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("ConsumeIDs(%v): n=%d err=%v", ids, n, err)
		}
		if len(ids) == 0 {
			if len(got) != 0 {
				t.Fatalf("ConsumeIDs(empty) = %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("ConsumeIDs = %v, want %v", got, ids)
		}
	}
}

func TestIDsSortedListEncodesOneByteDeltas(t *testing.T) {
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = 1000 + i // sorted, unit deltas
	}
	buf := AppendIDs(nil, ids)
	// count (1B) + first delta 1000 (2B) + 99 unit deltas (1B each).
	if want := 1 + 2 + 99; len(buf) != want {
		t.Fatalf("sorted id list took %d bytes, want %d", len(buf), want)
	}
}

func TestIDsCorruptCountRejected(t *testing.T) {
	// Count claims 1000 ids but only a few bytes follow.
	buf := AppendUvarint(nil, 1000)
	buf = append(buf, 1, 2, 3)
	if _, _, err := ConsumeIDs(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized id count: got %v, want ErrCorrupt", err)
	}
}

func TestBlobsRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{[]byte("a")},
		{[]byte(""), []byte("xy"), []byte("ciphertext")},
	}
	for _, blobs := range cases {
		buf := AppendBlobs(nil, blobs)
		got, n, err := ConsumeBlobs(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("ConsumeBlobs: n=%d err=%v", n, err)
		}
		if len(blobs) == 0 {
			if len(got) != 0 {
				t.Fatalf("ConsumeBlobs(empty) = %v", got)
			}
			continue
		}
		if len(got) != len(blobs) {
			t.Fatalf("ConsumeBlobs len = %d, want %d", len(got), len(blobs))
		}
		for i := range blobs {
			if !bytes.Equal(got[i], blobs[i]) {
				t.Fatalf("blob %d = %q, want %q", i, got[i], blobs[i])
			}
		}
	}
}

func TestBlobsCorruptLengthRejected(t *testing.T) {
	buf := AppendUvarint(nil, 1)  // one blob
	buf = AppendUvarint(buf, 100) // claiming 100 bytes
	buf = append(buf, 0xde, 0xad) // with 2 present
	if _, _, err := ConsumeBlobs(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized blob length: got %v, want ErrCorrupt", err)
	}
}

// allFields exercises every field kind the encoder supports.
type allFields struct {
	U   uint64
	I   int64
	F   float64
	B   []byte
	S   string
	IDs []int
	BB  [][]byte
	Sub *allFields
}

func (a *allFields) MarshalWire(e *Encoder) {
	e.Uint(1, a.U)
	e.Int(2, a.I)
	e.Float(3, a.F)
	e.Bytes(4, a.B)
	e.String(5, a.S)
	e.IDs(6, a.IDs)
	e.Blobs(7, a.BB)
	if a.Sub != nil {
		e.Msg(8, a.Sub)
	}
}

func (a *allFields) UnmarshalWire(d *Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			a.U = d.Uint()
		case 2:
			a.I = d.Int()
		case 3:
			a.F = d.Float()
		case 4:
			a.B = d.Bytes()
		case 5:
			a.S = d.String()
		case 6:
			a.IDs = d.IDs()
		case 7:
			a.BB = d.Blobs()
		case 8:
			a.Sub = &allFields{}
			d.Msg(a.Sub)
		}
	}
	return d.Err()
}

func TestEncoderDecoderAllFields(t *testing.T) {
	in := &allFields{
		U:   77,
		I:   -12345,
		F:   3.14159,
		B:   []byte{0, 1, 2, 255},
		S:   "paillier",
		IDs: []int{9, 4, 11, 11, 2},
		BB:  [][]byte{[]byte("aa"), nil, []byte("c")},
		Sub: &allFields{I: 8, F: -0.5},
	}
	var e Encoder
	in.MarshalWire(&e)
	var out allFields
	if err := out.UnmarshalWire(NewDecoder(e.buf)); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	// Blob round trip normalises nil entries to empty; compare per field.
	if out.U != in.U || out.I != in.I || out.F != in.F || out.S != in.S {
		t.Fatalf("scalars: got %+v", out)
	}
	if !bytes.Equal(out.B, in.B) || !reflect.DeepEqual(out.IDs, in.IDs) {
		t.Fatalf("slices: got %+v", out)
	}
	if len(out.BB) != 3 || !bytes.Equal(out.BB[0], []byte("aa")) || len(out.BB[1]) != 0 || !bytes.Equal(out.BB[2], []byte("c")) {
		t.Fatalf("blobs: got %v", out.BB)
	}
	if out.Sub == nil || out.Sub.I != 8 || out.Sub.F != -0.5 {
		t.Fatalf("nested: got %+v", out.Sub)
	}
	// Payload tally: float 8 + bytes 4 + blobs 3 + nested float 8.
	if want := int64(8 + 4 + 3 + 8); e.Payload() != want {
		t.Fatalf("payload = %d, want %d", e.Payload(), want)
	}
}

func TestDecoderSkipsUnknownTags(t *testing.T) {
	// A future peer adds fields this build doesn't know: tags 9 (varint),
	// 10 (fixed64) and 11 (bytes) must be skipped without error.
	var e Encoder
	(&allFields{U: 5}).MarshalWire(&e)
	e.Uint(9, 123)
	e.Float(10, 2.5)
	e.Bytes(11, []byte("future"))
	e.Int(2, -3) // known field after unknown ones still decodes
	var out allFields
	if err := out.UnmarshalWire(NewDecoder(e.buf)); err != nil {
		t.Fatalf("UnmarshalWire with unknown tags: %v", err)
	}
	if out.U != 5 || out.I != -3 {
		t.Fatalf("got %+v", out)
	}
}

func TestDecoderWireTypeMismatch(t *testing.T) {
	var e Encoder
	e.Uint(3, 9) // tag 3 is a float field in allFields, encoded as varint here
	var out allFields
	if err := out.UnmarshalWire(NewDecoder(e.buf)); !errors.Is(err, ErrWireType) {
		t.Fatalf("wire type mismatch: got %v, want ErrWireType", err)
	}
}

func TestDetect(t *testing.T) {
	gobRaw, err := Gob().Marshal(&Hello{Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(gobRaw) == 0 || gobRaw[0] == envelopeMagic {
		t.Fatalf("gob stream starts with %#x — envelope sniffing assumption broken", gobRaw[0])
	}
	for _, tc := range []struct {
		data []byte
		want string
	}{
		{nil, "gob"},
		{gobRaw, "gob"},
		{MarshalHello(1), "binary"},
	} {
		c, err := Detect(tc.data)
		if err != nil || c.Name() != tc.want {
			t.Errorf("Detect(%v) = %v, %v; want %s", tc.data, c, err, tc.want)
		}
	}
}

func TestDetectMaxRejectsFutureVersion(t *testing.T) {
	future := AppendUvarint([]byte{envelopeMagic}, 7) // version-7 envelope
	var vErr *UnsupportedVersionError
	if _, err := DetectMax(future, MaxVersion); !errors.As(err, &vErr) || vErr.Version != 7 {
		t.Fatalf("DetectMax(v7) = %v, want UnsupportedVersionError{7}", err)
	}
	// A gob-configured node (version 0) rejects even current binary frames.
	if _, err := DetectMax(MarshalHello(1), 0); !errors.As(err, &vErr) {
		t.Fatalf("DetectMax(v1, max 0) = %v, want UnsupportedVersionError", err)
	}
	// Truncated envelope is a decode error, not a silent gob fallback.
	if _, err := DetectMax([]byte{envelopeMagic}, MaxVersion); !errors.Is(err, ErrTruncated) {
		t.Fatalf("DetectMax(bare magic) = %v, want ErrTruncated", err)
	}
}

func TestCodecLookup(t *testing.T) {
	for name, version := range map[string]uint64{"gob": 0, "binary": 1} {
		c, err := ByName(name)
		if err != nil || c.Name() != name || c.Version() != version {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
		c2, err := ForVersion(version)
		if err != nil || c2.Name() != name {
			t.Errorf("ForVersion(%d) = %v, %v", version, c2, err)
		}
	}
	if _, err := ByName("protobuf"); err == nil {
		t.Error("ByName(protobuf) succeeded")
	}
	var vErr *UnsupportedVersionError
	if _, err := ForVersion(9); !errors.As(err, &vErr) {
		t.Errorf("ForVersion(9) = %v, want UnsupportedVersionError", err)
	}
}

func TestBinaryNilPayloadRoundTrip(t *testing.T) {
	raw, err := Binary().Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, []byte{0x00, 0x01}) {
		t.Fatalf("empty binary payload = %x, want 0001", raw)
	}
	c, err := Detect(raw)
	if err != nil || c.Name() != "binary" {
		t.Fatalf("Detect(empty binary) = %v, %v", c, err)
	}
	if err := Binary().Unmarshal(raw, nil); err != nil {
		t.Fatalf("Unmarshal(empty, nil): %v", err)
	}
}

func TestHelloNegotiation(t *testing.T) {
	// binary ↔ binary commits to v1.
	ack, err := HandleHello(MarshalHello(MaxVersion), MaxVersion)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ParseHelloAck(ack); err != nil || v != 1 {
		t.Fatalf("binary↔binary negotiated v%d, %v; want 1", v, err)
	}
	// binary ↔ gob-configured node falls back to gob (version 0).
	ack, err = HandleHello(MarshalHello(MaxVersion), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ParseHelloAck(ack); err != nil || v != 0 {
		t.Fatalf("binary↔gob negotiated v%d, %v; want 0", v, err)
	}
	// A future caller (v9) against this build commits to this build's max.
	ack, err = HandleHello(MarshalHello(9), MaxVersion)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ParseHelloAck(ack); err != nil || v != MaxVersion {
		t.Fatalf("v9 caller negotiated v%d, %v; want %d", v, err, MaxVersion)
	}
	if _, err := HandleHello([]byte("junk"), MaxVersion); err == nil {
		t.Fatal("HandleHello accepted a non-envelope probe")
	}
}

func TestMarshalMeasured(t *testing.T) {
	msg := &allFields{I: 4, B: []byte("key material"), BB: [][]byte{make([]byte, 100)}, F: 1.5}
	wantPayload := int64(12 + 100 + 8)
	for _, c := range []Codec{Gob(), Binary()} {
		raw, payload, err := MarshalMeasured(c, msg)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if payload != wantPayload {
			t.Errorf("%s: payload = %d, want %d", c.Name(), payload, wantPayload)
		}
		if int64(len(raw)) < payload {
			t.Errorf("%s: raw %d shorter than payload %d", c.Name(), len(raw), payload)
		}
	}
	// nil message: empty payload in both codecs.
	for _, c := range []Codec{Gob(), Binary()} {
		raw, payload, err := MarshalMeasured(c, nil)
		if err != nil || payload != 0 {
			t.Fatalf("%s nil: %v payload=%d", c.Name(), err, payload)
		}
		if c.Version() == 0 && raw != nil {
			t.Errorf("gob nil payload = %x", raw)
		}
	}
}
