// Package mat provides the dense row-major linear algebra used throughout
// the repository: matrices, vectors and the handful of BLAS-like kernels the
// federated-learning components need. It replaces the NumPy/PyTorch tensor
// layer the paper's implementation relies on.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SliceRows returns a new matrix containing rows [from, to).
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("mat: row slice [%d,%d) out of range for %d rows", from, to, m.Rows))
	}
	out := New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// SelectRows returns a new matrix whose i-th row is m.Row(idx[i]).
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// SelectCols returns a new matrix whose j-th column is column idx[j] of m.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := New(m.Rows, len(idx))
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, c := range idx {
			dst[j] = src[c]
		}
	}
	return out
}

// HConcat concatenates matrices horizontally (same row count).
func HConcat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: HConcat row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Apply replaces every element x with f(x), in place, and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// AddInPlace adds b to m element-wise.
func (m *Matrix) AddInPlace(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AddInPlace shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVector adds vector v to every row of m, in place.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	if len(v) != m.Cols {
		panic("mat: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range v {
			row[j] += x
		}
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: SqDist length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// ArgMax returns the index of the maximum element of v (first on ties).
// It panics on an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("mat: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Standardize scales each column of m to zero mean and unit variance in
// place, returning the per-column means and standard deviations used. A
// column with zero variance is left centred but unscaled.
func (m *Matrix) Standardize() (means, stds []float64) {
	means = make([]float64, m.Cols)
	stds = make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += m.At(i, j)
		}
		mu := s / float64(m.Rows)
		var ss float64
		for i := 0; i < m.Rows; i++ {
			d := m.At(i, j) - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(m.Rows))
		means[j], stds[j] = mu, sd
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, j) - mu
			if sd > 0 {
				v /= sd
			}
			m.Set(i, j, v)
		}
	}
	return means, stds
}

// ApplyStandardization applies previously computed column means/stds to m in
// place (used to normalise validation/test sets with training statistics).
func (m *Matrix) ApplyStandardization(means, stds []float64) {
	if len(means) != m.Cols || len(stds) != m.Cols {
		panic("mat: ApplyStandardization length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
			if stds[j] > 0 {
				row[j] /= stds[j]
			}
		}
	}
}
