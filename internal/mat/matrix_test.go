package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row should alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should not alias")
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}, {4}})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("SliceRows wrong: %v", s.Data)
	}
}

func TestSelectRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.SelectRows([]int{1, 0, 1})
	if r.Rows != 3 || r.At(0, 0) != 4 || r.At(1, 2) != 3 {
		t.Fatalf("SelectRows wrong: %v", r.Data)
	}
	c := m.SelectCols([]int{2, 0})
	if c.Cols != 2 || c.At(0, 0) != 3 || c.At(1, 1) != 4 {
		t.Fatalf("SelectCols wrong: %v", c.Data)
	}
}

func TestHConcat(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	m := HConcat(a, b)
	if m.Cols != 3 || m.At(0, 1) != 3 || m.At(1, 2) != 6 {
		t.Fatalf("HConcat wrong: %v", m.Data)
	}
}

func TestHConcatReconstructsSplit(t *testing.T) {
	// Splitting a matrix by columns and re-concatenating must reconstruct it.
	rng := rand.New(rand.NewSource(1))
	m := New(7, 9)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := m.SelectCols([]int{0, 1, 2})
	b := m.SelectCols([]int{3, 4, 5, 6})
	c := m.SelectCols([]int{7, 8})
	got := HConcat(a, b, c)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("reconstruction mismatch")
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T wrong: %v", tr.Data)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at %d,%d: %v", i, j, c.Data)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := Mul(a, id)
	for i := range a.Data {
		if !almostEq(c.Data[i], a.Data[i]) {
			t.Fatal("A·I != A")
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestApplyScaleAdd(t *testing.T) {
	m := FromRows([][]float64{{1, -2}})
	m.Apply(math.Abs)
	if m.At(0, 1) != 2 {
		t.Fatal("Apply failed")
	}
	m.ScaleInPlace(3)
	if m.At(0, 0) != 3 {
		t.Fatal("Scale failed")
	}
	m.AddInPlace(FromRows([][]float64{{1, 1}}))
	if m.At(0, 1) != 7 {
		t.Fatal("Add failed")
	}
	m.AddRowVector([]float64{10, 20})
	if m.At(0, 0) != 14 || m.At(0, 1) != 27 {
		t.Fatal("AddRowVector failed")
	}
}

func TestDotSqDistNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatal("Dot wrong")
	}
	if SqDist(a, b) != 27 {
		t.Fatal("SqDist wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5) {
		t.Fatal("Norm2 wrong")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float64{7, 7, 3}) != 0 {
		t.Fatal("ArgMax should prefer first on ties")
	}
}

func TestMeanStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(v), 5) {
		t.Fatal("Mean wrong")
	}
	if !almostEq(Std(v), 2) {
		t.Fatal("Std wrong")
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
}

func TestStandardize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(100, 3)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()*5 + 2
	}
	means, stds := m.Standardize()
	if len(means) != 3 || len(stds) != 3 {
		t.Fatal("stat lengths wrong")
	}
	for j := 0; j < 3; j++ {
		col := make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			col[i] = m.At(i, j)
		}
		if math.Abs(Mean(col)) > 1e-9 || math.Abs(Std(col)-1) > 1e-9 {
			t.Fatalf("col %d not standardized: mean %g std %g", j, Mean(col), Std(col))
		}
	}
}

func TestStandardizeZeroVarianceColumn(t *testing.T) {
	m := FromRows([][]float64{{5, 1}, {5, 2}})
	_, stds := m.Standardize()
	if stds[0] != 0 {
		t.Fatal("expected zero std for constant column")
	}
	if m.At(0, 0) != 0 || m.At(1, 0) != 0 {
		t.Fatal("constant column should be centred to zero")
	}
}

func TestApplyStandardization(t *testing.T) {
	train := FromRows([][]float64{{0}, {2}})
	means, stds := train.Standardize()
	test := FromRows([][]float64{{1}})
	test.ApplyStandardization(means, stds)
	if !almostEq(test.At(0, 0), 0) {
		t.Fatalf("expected 0, got %g", test.At(0, 0))
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := New(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.T().T()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)^T == B^T·A^T.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, m := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(n, k)
		b := New(k, m)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SqDist(a,b) == |a|^2 + |b|^2 - 2 a·b.
func TestSqDistExpansionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		lhs := SqDist(a, b)
		rhs := Dot(a, a) + Dot(b, b) - 2*Dot(a, b)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
