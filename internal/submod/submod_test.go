package submod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSimilarity(rng *rand.Rand, n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		w[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

func fl(t testing.TB, w [][]float64) *FacilityLocation {
	f, err := NewFacilityLocation(w)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFacilityLocationValidation(t *testing.T) {
	if _, err := NewFacilityLocation(nil); err == nil {
		t.Fatal("expected error for empty matrix")
	}
	if _, err := NewFacilityLocation([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
	if _, err := NewFacilityLocation([][]float64{{1, -0.5}, {0.5, 1}}); err == nil {
		t.Fatal("expected error for negative similarity")
	}
	if _, err := NewFacilityLocation([][]float64{{1, math.NaN()}, {0.5, 1}}); err == nil {
		t.Fatal("expected error for NaN similarity")
	}
}

func TestValueNormalized(t *testing.T) {
	f := fl(t, randomSimilarity(rand.New(rand.NewSource(1)), 5))
	if f.Value(nil) != 0 {
		t.Fatal("f(∅) must be 0")
	}
}

func TestValueKnown(t *testing.T) {
	w := [][]float64{
		{1.0, 0.2, 0.3},
		{0.2, 1.0, 0.8},
		{0.3, 0.8, 1.0},
	}
	f := fl(t, w)
	// f({1}) = 0.2 + 1.0 + 0.8 = 2.0
	if got := f.Value([]int{1}); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("f({1}) = %g", got)
	}
	// f({0,1}) = max(1,.2)+max(.2,1)+max(.3,.8) = 1+1+0.8 = 2.8
	if got := f.Value([]int{0, 1}); math.Abs(got-2.8) > 1e-12 {
		t.Fatalf("f({0,1}) = %g", got)
	}
}

// The paper's Fig. 1 story: bank (0) and credit (1) are near-duplicates,
// e-commerce (2) is diverse. Greedy must pick one of {bank, credit} plus
// e-commerce, never bank+credit, even though individually bank and credit
// score highest.
func TestGreedyPrefersDiversity(t *testing.T) {
	w := [][]float64{
		{1.00, 0.95, 0.30},
		{0.95, 1.00, 0.30},
		{0.30, 0.30, 1.00},
	}
	f := fl(t, w)
	res, err := Greedy(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, v := range res.Selected {
		got[v] = true
	}
	if !got[2] {
		t.Fatalf("diverse participant 2 not selected: %v", res.Selected)
	}
	if got[0] && got[1] {
		t.Fatalf("redundant pair selected: %v", res.Selected)
	}
}

func TestGreedyValidation(t *testing.T) {
	f := fl(t, randomSimilarity(rand.New(rand.NewSource(2)), 4))
	if _, err := Greedy(f, 0); err == nil {
		t.Fatal("expected error k=0")
	}
	if _, err := Greedy(f, 5); err == nil {
		t.Fatal("expected error k>n")
	}
}

func TestGreedyGainsDiminish(t *testing.T) {
	f := fl(t, randomSimilarity(rand.New(rand.NewSource(3)), 12))
	res, err := Greedy(f, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1]+1e-9 {
			t.Fatalf("gains must diminish: %v", res.Gains)
		}
	}
	if math.Abs(res.Value-f.Value(res.Selected)) > 1e-9 {
		t.Fatal("accumulated value mismatch")
	}
}

func TestLazyGreedyMatchesGreedy(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		k := 1 + rng.Intn(n)
		f := fl(t, randomSimilarity(rng, n))
		g, err := Greedy(f, k)
		if err != nil {
			t.Fatal(err)
		}
		l, err := LazyGreedy(f, k)
		if err != nil {
			t.Fatal(err)
		}
		// Under exact arithmetic lazy greedy selects the same set; floating-
		// point ties can swap elements with equal gains, so the contract is
		// value equivalence.
		if math.Abs(g.Value-l.Value) > 1e-9 {
			t.Fatalf("seed %d: value mismatch %g vs %g (greedy %v, lazy %v)",
				seed, g.Value, l.Value, g.Selected, l.Selected)
		}
		// Lazy greedy never does more than one refresh per element per round,
		// so it is bounded by greedy's cost plus the initial pass; in practice
		// it does far fewer evaluations for larger k.
		if l.Evaluations > g.Evaluations+f.N() {
			t.Fatalf("seed %d: lazy used too many evaluations (%d vs greedy %d)", seed, l.Evaluations, g.Evaluations)
		}
	}
}

func TestGreedyApproximationGuarantee(t *testing.T) {
	// Greedy must achieve ≥ (1 − 1/e)·OPT on monotone submodular functions.
	bound := 1 - 1/math.E
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		k := 1 + rng.Intn(n/2+1)
		f := fl(t, randomSimilarity(rng, n))
		g, err := Greedy(f, k)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := BruteForce(f, k)
		if err != nil {
			t.Fatal(err)
		}
		if g.Value < bound*opt.Value-1e-9 {
			t.Fatalf("seed %d: greedy %g < (1-1/e)·OPT %g", seed, g.Value, bound*opt.Value)
		}
		if g.Value > opt.Value+1e-9 {
			t.Fatalf("seed %d: greedy exceeds OPT?!", seed)
		}
	}
}

// GreedyWarmStart must equal LazyGreedy exactly — same selected order, same
// gains, same value — regardless of the prior it was seeded with: a perfect
// prior, a stale/garbage prior, an empty one. The prior only steers
// evaluation order.
func TestGreedyWarmStartMatchesLazyGreedy(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		k := 1 + rng.Intn(n)
		f := fl(t, randomSimilarity(rng, n))
		l, err := LazyGreedy(f, k)
		if err != nil {
			t.Fatal(err)
		}
		priors := [][]int{
			nil,                                 // no prior: must degrade to plain lazy greedy
			l.Selected,                          // perfect prior
			l.Selected[:k/2],                    // truncated prior
			{n, -1, 0, 0},                       // garbage: out of range + duplicates
			rng.Perm(n)[:k],                     // random stale prior
			append([]int{n - 1}, l.Selected...), // shifted prior
		}
		for pi, prior := range priors {
			w, err := GreedyWarmStart(f, k, prior)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIntSlices(w.Selected, l.Selected) {
				t.Fatalf("seed %d prior %d: selected %v, want %v", seed, pi, w.Selected, l.Selected)
			}
			if math.Abs(w.Value-l.Value) > 0 {
				t.Fatalf("seed %d prior %d: value %g, want %g", seed, pi, w.Value, l.Value)
			}
			for i := range w.Gains {
				if w.Gains[i] != l.Gains[i] {
					t.Fatalf("seed %d prior %d: gain[%d] %g, want %g", seed, pi, i, w.Gains[i], l.Gains[i])
				}
			}
		}
	}
}

// Warm-start cost contract: with an intact prior the hint evaluation
// substitutes for the refresh lazy greedy would spend on the same element, so
// the evaluation count matches LazyGreedy exactly; an arbitrary prior costs
// at most one extra evaluation per displaced pick. Both stay far below plain
// greedy's n·k.
func TestGreedyWarmStartRepairsCheaply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, k := 40, 10
	f := fl(t, randomSimilarity(rng, n))
	l, err := LazyGreedy(f, k)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(f, k)
	if err != nil {
		t.Fatal(err)
	}
	w, err := GreedyWarmStart(f, k, l.Selected)
	if err != nil {
		t.Fatal(err)
	}
	if w.Evaluations > l.Evaluations {
		t.Fatalf("perfect prior used %d evaluations, lazy greedy %d", w.Evaluations, l.Evaluations)
	}
	stale, err := GreedyWarmStart(f, k, rng.Perm(n)[:k])
	if err != nil {
		t.Fatal(err)
	}
	if stale.Evaluations > l.Evaluations+k {
		t.Fatalf("stale prior used %d evaluations, want ≤ lazy %d + k %d", stale.Evaluations, l.Evaluations, k)
	}
	if w.Evaluations >= g.Evaluations || stale.Evaluations >= g.Evaluations {
		t.Fatalf("warm start (%d/%d evals) not below plain greedy (%d)", w.Evaluations, stale.Evaluations, g.Evaluations)
	}
	if !equalIntSlices(w.Selected, l.Selected) {
		t.Fatalf("warm start diverged: %v vs %v", w.Selected, l.Selected)
	}
}

func TestGreedyWarmStartValidation(t *testing.T) {
	f := fl(t, randomSimilarity(rand.New(rand.NewSource(12)), 4))
	if _, err := GreedyWarmStart(f, 0, nil); err == nil {
		t.Fatal("expected error k=0")
	}
	if _, err := GreedyWarmStart(f, 5, nil); err == nil {
		t.Fatal("expected error k>n")
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStochasticGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := fl(t, randomSimilarity(rng, 20))
	res, err := StochasticGreedy(f, 5, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 5 {
		t.Fatalf("selected %d elements", len(res.Selected))
	}
	// Must be distinct.
	seen := map[int]bool{}
	for _, v := range res.Selected {
		if seen[v] {
			t.Fatalf("duplicate selection: %v", res.Selected)
		}
		seen[v] = true
	}
	// Should be within a reasonable factor of full greedy on average; check
	// a loose floor against the exact greedy value.
	g, _ := Greedy(f, 5)
	if res.Value < 0.5*g.Value {
		t.Fatalf("stochastic value %g too far below greedy %g", res.Value, g.Value)
	}
}

func TestStochasticGreedyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := fl(t, randomSimilarity(rng, 5))
	if _, err := StochasticGreedy(f, 2, 0, rng); err == nil {
		t.Fatal("expected eps validation error")
	}
	if _, err := StochasticGreedy(f, 2, 1.5, rng); err == nil {
		t.Fatal("expected eps validation error")
	}
	if _, err := StochasticGreedy(f, 2, 0.1, nil); err == nil {
		t.Fatal("expected nil rng error")
	}
}

func TestBruteForceSmall(t *testing.T) {
	w := [][]float64{
		{1.00, 0.95, 0.30},
		{0.95, 1.00, 0.30},
		{0.30, 0.30, 1.00},
	}
	f := fl(t, w)
	res, err := BruteForce(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal pairs are {0,2} or {1,2} with value 1+0.95+... compute: {0,2}:
	// max(1,.3)+max(.95,.3)+max(.3,1) = 1+0.95+1 = 2.95. {0,1} = 1+1+0.3=2.3.
	if math.Abs(res.Value-2.95) > 1e-12 {
		t.Fatalf("OPT = %g, want 2.95", res.Value)
	}
	if _, err := BruteForce(f, 4); err == nil {
		t.Fatal("expected k>n error")
	}
}

// Theorem 1 as a property: facility location on random non-negative
// similarity matrices is normalized, monotone and submodular.
func TestTheorem1Property(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		f, err := NewFacilityLocation(randomSimilarity(rng, n))
		if err != nil {
			return false
		}
		return f.Value(nil) == 0 &&
			IsMonotone(f, 30, rng) &&
			IsSubmodular(f, 30, rng)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A deliberately supermodular function must be rejected by the checker —
// guards against IsSubmodular vacuously passing.
type productObjective struct{ n int }

func (p productObjective) N() int { return p.n }
func (p productObjective) Value(s []int) float64 {
	// f(S) = |S|² is supermodular (increasing marginal gains).
	return float64(len(s) * len(s))
}

func TestIsSubmodularDetectsViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if IsSubmodular(productObjective{n: 6}, 200, rng) {
		t.Fatal("checker failed to detect supermodular function")
	}
	if !IsMonotone(productObjective{n: 6}, 200, rng) {
		t.Fatal("|S|² is monotone; checker disagrees")
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f, _ := NewFacilityLocation(randomSimilarity(rng, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(f, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLazyGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f, _ := NewFacilityLocation(randomSimilarity(rng, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LazyGreedy(f, 16); err != nil {
			b.Fatal(err)
		}
	}
}
