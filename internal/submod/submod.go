// Package submod implements monotone submodular maximization under a
// cardinality constraint: the optimization core of VFPS-SM (§III-C of the
// paper). It provides the plain greedy algorithm with its 1−1/e guarantee,
// the lazy (Minoux) variant, stochastic greedy ("lazier than lazy greedy",
// the paper's reference [42]) and brute force for small ground sets, plus the
// facility-location objective f(S) = Σ_p max_{s∈S} w(p,s) that the paper
// proves normalized, monotone and submodular (Theorem 1).
package submod

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Objective is a set function over the ground set {0, …, N()−1}.
type Objective interface {
	// N is the size of the ground set.
	N() int
	// Value evaluates f(S) for the given member set. Implementations must
	// not retain or mutate the slice.
	Value(s []int) float64
}

// FacilityLocation is the KNN submodular function of the paper:
// f(S) = Σ_{p∈P} max_{s∈S} W[p][s], with f(∅) = 0.
type FacilityLocation struct {
	W [][]float64 // W[p][s] = w(p, s); square, size n×n
}

// NewFacilityLocation validates the similarity matrix and wraps it.
func NewFacilityLocation(w [][]float64) (*FacilityLocation, error) {
	n := len(w)
	if n == 0 {
		return nil, fmt.Errorf("submod: empty similarity matrix")
	}
	for i, row := range w {
		if len(row) != n {
			return nil, fmt.Errorf("submod: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("submod: invalid similarity W[%d][%d]=%g (must be finite and ≥ 0)", i, j, v)
			}
		}
	}
	return &FacilityLocation{W: w}, nil
}

// N returns the ground-set size.
func (f *FacilityLocation) N() int { return len(f.W) }

// Value computes f(S) = Σ_p max_{s∈S} W[p][s]; the empty set scores 0
// (normalization).
func (f *FacilityLocation) Value(s []int) float64 {
	if len(s) == 0 {
		return 0
	}
	var total float64
	for p := range f.W {
		best := math.Inf(-1)
		for _, v := range s {
			if w := f.W[p][v]; w > best {
				best = w
			}
		}
		total += best
	}
	return total
}

// Result reports a maximizer's outcome.
type Result struct {
	// Selected holds the chosen elements in selection order.
	Selected []int
	// Value is f(Selected).
	Value float64
	// Gains[i] is the marginal gain realised by the i-th selection.
	Gains []float64
	// Evaluations counts objective (or marginal-gain) evaluations, the unit
	// of selection cost.
	Evaluations int
}

func checkK(f Objective, k int) error {
	if k <= 0 {
		return fmt.Errorf("submod: k=%d must be positive", k)
	}
	if k > f.N() {
		return fmt.Errorf("submod: k=%d exceeds ground set size %d", k, f.N())
	}
	return nil
}

// Greedy runs the standard greedy algorithm (Algorithm 1 of the paper):
// starting from ∅, repeatedly add the element with maximum marginal gain,
// ties broken by smallest element id.
func Greedy(f Objective, k int) (*Result, error) {
	if err := checkK(f, k); err != nil {
		return nil, err
	}
	n := f.N()
	selected := make([]int, 0, k)
	inSet := make([]bool, n)
	res := &Result{}
	cur := 0.0
	for len(selected) < k {
		bestV, bestGain := -1, math.Inf(-1)
		for v := 0; v < n; v++ {
			if inSet[v] {
				continue
			}
			val := f.Value(append(selected, v))
			res.Evaluations++
			if gain := val - cur; gain > bestGain {
				bestGain, bestV = gain, v
			}
		}
		selected = append(selected, bestV)
		inSet[bestV] = true
		cur += bestGain
		res.Gains = append(res.Gains, bestGain)
	}
	res.Selected = selected
	res.Value = cur
	return res, nil
}

// gainItem is a lazy-greedy priority-queue entry: a cached upper bound on an
// element's marginal gain.
type gainItem struct {
	v     int
	bound float64
	round int // the selection round the bound was computed in
}

type gainHeap []gainItem

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].v < h[j].v
}
func (h gainHeap) Swap(i, j int)          { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)            { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any              { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h gainHeap) peek() gainItem         { return h[0] }
func (h *gainHeap) replaceTop(g gainItem) { (*h)[0] = g; heap.Fix(h, 0) }

// LazyGreedy runs Minoux's accelerated greedy. By submodularity, marginal
// gains only shrink as the set grows, so stale cached gains are valid upper
// bounds: an element whose refreshed gain still tops the heap is the true
// argmax without touching the rest. Returns results identical to Greedy
// (same tie-breaking) with far fewer evaluations.
func LazyGreedy(f Objective, k int) (*Result, error) {
	if err := checkK(f, k); err != nil {
		return nil, err
	}
	n := f.N()
	res := &Result{}
	selected := make([]int, 0, k)
	cur := 0.0
	h := make(gainHeap, 0, n)
	for v := 0; v < n; v++ {
		val := f.Value([]int{v})
		res.Evaluations++
		h = append(h, gainItem{v: v, bound: val, round: 0})
	}
	heap.Init(&h)
	for round := 1; len(selected) < k; round++ {
		for {
			top := h.peek()
			if top.round == round {
				heap.Pop(&h)
				selected = append(selected, top.v)
				cur += top.bound
				res.Gains = append(res.Gains, top.bound)
				break
			}
			val := f.Value(append(selected, top.v))
			res.Evaluations++
			h.replaceTop(gainItem{v: top.v, bound: val - cur, round: round})
		}
	}
	res.Selected = selected
	res.Value = cur
	return res, nil
}

// GreedyWarmStart runs lazy greedy seeded with a prior selection, for online
// selection under churn: at each round the pick the prior selection made at
// that position is re-evaluated first. An undisplaced pick is confirmed by
// that single hint evaluation (which substitutes for the refresh lazy greedy
// would spend on it anyway) plus only the bound-tightening refreshes lazy
// greedy itself requires; a displaced pick costs at most one extra
// evaluation. Total cost is therefore ≤ LazyGreedy + (#displaced picks),
// and = LazyGreedy when the prior survives intact. The output — selected
// set, order, gains and value — is identical to Greedy and LazyGreedy on the
// same objective (same smallest-id tie-breaking); the prior only steers which
// cached bounds are refreshed first, never the argmax. A stale prior (ids out
// of range, duplicates, wrong length) degrades gracefully to plain lazy
// greedy. An empty prior is exactly LazyGreedy.
func GreedyWarmStart(f Objective, k int, prior []int) (*Result, error) {
	if err := checkK(f, k); err != nil {
		return nil, err
	}
	n := f.N()
	res := &Result{}
	selected := make([]int, 0, k)
	inSet := make([]bool, n)
	cur := 0.0
	// bounds/stamp mirror the freshest heap entry per element so stale
	// duplicates (a warm hint re-pushes its element) are discarded on pop.
	bounds := make([]float64, n)
	stamp := make([]int, n)
	h := make(gainHeap, 0, n+k)
	for v := 0; v < n; v++ {
		val := f.Value([]int{v})
		res.Evaluations++
		bounds[v] = val
		h = append(h, gainItem{v: v, bound: val, round: 0})
	}
	heap.Init(&h)
	for round := 1; len(selected) < k; round++ {
		// Warm hint: refresh the prior pick for this position before
		// scanning. By submodularity every other cached bound is still a
		// valid upper bound, so if the refreshed hint tops the heap it is
		// the true argmax.
		if i := round - 1; i < len(prior) {
			if p := prior[i]; p >= 0 && p < n && !inSet[p] && stamp[p] != round {
				val := f.Value(append(selected, p))
				res.Evaluations++
				bounds[p] = val - cur
				stamp[p] = round
				heap.Push(&h, gainItem{v: p, bound: bounds[p], round: round})
			}
		}
		for {
			top := h.peek()
			if inSet[top.v] || top.bound != bounds[top.v] || (top.round == round) != (stamp[top.v] == round) {
				heap.Pop(&h) // stale duplicate of a hinted element
				continue
			}
			if top.round == round {
				heap.Pop(&h)
				selected = append(selected, top.v)
				inSet[top.v] = true
				cur += top.bound
				res.Gains = append(res.Gains, top.bound)
				break
			}
			val := f.Value(append(selected, top.v))
			res.Evaluations++
			bounds[top.v] = val - cur
			stamp[top.v] = round
			h.replaceTop(gainItem{v: top.v, bound: bounds[top.v], round: round})
		}
	}
	res.Selected = selected
	res.Value = cur
	return res, nil
}

// StochasticGreedy implements the "lazier than lazy greedy" algorithm: each
// round evaluates only a uniform random sample of size ⌈(n/k)·ln(1/eps)⌉,
// achieving a (1 − 1/e − eps) guarantee in expectation with O(n·ln(1/eps))
// total evaluations.
func StochasticGreedy(f Objective, k int, eps float64, rng *rand.Rand) (*Result, error) {
	if err := checkK(f, k); err != nil {
		return nil, err
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("submod: eps=%g must be in (0,1)", eps)
	}
	if rng == nil {
		return nil, fmt.Errorf("submod: nil rng")
	}
	n := f.N()
	sample := int(math.Ceil(float64(n) / float64(k) * math.Log(1/eps)))
	if sample < 1 {
		sample = 1
	}
	res := &Result{}
	selected := make([]int, 0, k)
	inSet := make([]bool, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	cur := 0.0
	for len(selected) < k {
		// Sample without replacement from the remaining elements.
		m := len(remaining)
		s := sample
		if s > m {
			s = m
		}
		for i := 0; i < s; i++ {
			j := i + rng.Intn(m-i)
			remaining[i], remaining[j] = remaining[j], remaining[i]
		}
		bestV, bestGain := -1, math.Inf(-1)
		for _, v := range remaining[:s] {
			val := f.Value(append(selected, v))
			res.Evaluations++
			if gain := val - cur; gain > bestGain || (gain == bestGain && v < bestV) {
				bestGain, bestV = gain, v
			}
		}
		selected = append(selected, bestV)
		inSet[bestV] = true
		cur += bestGain
		res.Gains = append(res.Gains, bestGain)
		// Remove bestV from remaining.
		for i, v := range remaining {
			if v == bestV {
				remaining[i] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
				break
			}
		}
	}
	res.Selected = selected
	res.Value = cur
	return res, nil
}

// BruteForce finds the exact optimum over all size-k subsets; exponential,
// for tests and approximation-ratio measurements only.
func BruteForce(f Objective, k int) (*Result, error) {
	if err := checkK(f, k); err != nil {
		return nil, err
	}
	n := f.N()
	if n > 24 {
		return nil, fmt.Errorf("submod: brute force limited to n ≤ 24, got %d", n)
	}
	res := &Result{Value: math.Inf(-1)}
	subset := make([]int, 0, k)
	var recurse func(start int)
	recurse = func(start int) {
		if len(subset) == k {
			val := f.Value(subset)
			res.Evaluations++
			if val > res.Value {
				res.Value = val
				res.Selected = append(res.Selected[:0], subset...)
			}
			return
		}
		// Prune: not enough elements left to fill the subset.
		for v := start; v <= n-(k-len(subset)); v++ {
			subset = append(subset, v)
			recurse(v + 1)
			subset = subset[:len(subset)-1]
		}
	}
	recurse(0)
	return res, nil
}

// IsMonotone samples random chains A ⊆ B and checks f(A) ≤ f(B) up to a
// small tolerance. Used by property tests and by callers validating custom
// objectives.
func IsMonotone(f Objective, trials int, rng *rand.Rand) bool {
	n := f.N()
	for t := 0; t < trials; t++ {
		a, b := randomChain(n, rng)
		if f.Value(a) > f.Value(b)+1e-9 {
			return false
		}
	}
	return true
}

// IsSubmodular samples random A ⊆ B and v ∉ B and checks the diminishing
// returns inequality f(A∪{v})−f(A) ≥ f(B∪{v})−f(B) up to a small tolerance.
func IsSubmodular(f Objective, trials int, rng *rand.Rand) bool {
	n := f.N()
	if n < 2 {
		return true
	}
	for t := 0; t < trials; t++ {
		a, b := randomChain(n, rng)
		outside := elementsOutside(n, b)
		if len(outside) == 0 {
			continue
		}
		v := outside[rng.Intn(len(outside))]
		gainA := f.Value(append(append([]int{}, a...), v)) - f.Value(a)
		gainB := f.Value(append(append([]int{}, b...), v)) - f.Value(b)
		if gainA < gainB-1e-9 {
			return false
		}
	}
	return true
}

// randomChain returns random sets a ⊆ b ⊆ {0..n-1} with |b| < n.
func randomChain(n int, rng *rand.Rand) (a, b []int) {
	perm := rng.Perm(n)
	bSize := rng.Intn(n) // 0..n-1, leaving at least one element outside
	aSize := 0
	if bSize > 0 {
		aSize = rng.Intn(bSize + 1)
	}
	b = append([]int{}, perm[:bSize]...)
	a = append([]int{}, b[:aSize]...)
	sort.Ints(a)
	sort.Ints(b)
	return a, b
}

func elementsOutside(n int, set []int) []int {
	in := make([]bool, n)
	for _, v := range set {
		in[v] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !in[v] {
			out = append(out, v)
		}
	}
	return out
}
