package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"vfps"
	"vfps/internal/he"
	"vfps/internal/paillier"
	"vfps/internal/par"
)

// PackedCRT reports the CRT decryption microbenchmark: the same N-ciphertext
// decryption run with the CRT fast path (two half-width exponentiations plus
// Garner recombination) against the textbook λ/μ path, both fully serial so
// the ratio isolates the arithmetic.
type PackedCRT struct {
	N    int
	Bits int
	// CRTSeconds and PlainSeconds time the serial decryption passes.
	CRTSeconds   float64
	PlainSeconds float64
	// Speedup is PlainSeconds/CRTSeconds (≥ 3 expected at 1024-bit keys).
	Speedup float64
}

// PackedWire reports the slot-packing wire microbenchmark: how many
// ciphertexts and bytes N fixed-point values occupy scalar versus packed.
type PackedWire struct {
	N          int
	Bits       int
	PackFactor int
	// Ciphertext counts and total marshalled bytes for the two encodings.
	CiphertextsScalar int
	CiphertextsPacked int
	BytesScalar       int64
	BytesPacked       int64
	// ByteReduction is BytesScalar/BytesPacked (≈ the pack factor).
	ByteReduction float64
	// EncryptScalarSeconds/EncryptPackedSeconds wall-clock the two passes at
	// the default parallelism: packing also cuts encryption work because
	// every ciphertext costs one modular exponentiation regardless of how
	// many slots it carries.
	EncryptScalarSeconds float64
	EncryptPackedSeconds float64
	EncryptSpeedup       float64
}

// PackedE2E reports one scalar-vs-packed end-to-end selection pair under real
// Paillier. SelectedMatch asserts the packing contract: the packed consortium
// selects the exact same participants. Byte counters come from the protocol
// cost model, so ByteReduction reflects real message payloads (pseudo-IDs and
// stats included), not just ciphertext arithmetic.
type PackedE2E struct {
	Variant       string
	ScalarSeconds float64
	PackedSeconds float64
	Speedup       float64
	Selected      []int
	SelectedMatch bool
	BytesScalar   int64
	BytesPacked   int64
	ByteReduction float64
}

// PackedResult is the structured output of the packed-pipeline benchmark.
type PackedResult struct {
	GOMAXPROCS  int
	Parallelism int
	Rows        int
	Queries     int
	Parties     int
	KeyBits     int
	CRT         PackedCRT
	Wire        PackedWire
	EndToEnd    []PackedE2E
	Table       *Table
}

// Packed benchmarks the batched Paillier hot path: CRT decryption against the
// λ/μ baseline at N=1000 under 1024-bit keys, the ciphertext/byte footprint
// of slot packing at the same size, and full BASE and SM (Fagin) selections
// wall-clocked with packing off versus on. The selected sets must match
// exactly; the byte reduction approaches the pack factor.
func Packed(ctx context.Context, opt Options) (*PackedResult, error) {
	return packedAt(ctx, opt, 1000, 1024, 512)
}

// packedAt is Packed with the microbenchmark size and key widths injectable
// so unit tests can shrink them.
func packedAt(ctx context.Context, opt Options, vecN, vecBits, e2eBits int) (*PackedResult, error) {
	opt = opt.withDefaults()
	res := &PackedResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Degree(),
		Parties:     opt.Parties,
		KeyBits:     e2eBits,
	}
	res.Rows = opt.Rows
	if res.Rows > 200 {
		res.Rows = 200
	}
	res.Queries = opt.Queries
	if res.Queries > 8 {
		res.Queries = 8
	}

	if err := packedCRT(ctx, &res.CRT, vecN, vecBits); err != nil {
		return nil, err
	}
	if err := packedWire(ctx, &res.Wire, opt, vecN, vecBits); err != nil {
		return nil, err
	}
	for _, variant := range []string{"base", "fagin"} {
		e2e, err := packedE2E(ctx, opt, res, variant)
		if err != nil {
			return nil, err
		}
		res.EndToEnd = append(res.EndToEnd, *e2e)
	}

	res.Table = packedTable(res)
	res.Table.Fprint(opt.Out)
	return res, nil
}

// packedCRT times serial decryption of the same ciphertexts with and without
// the CRT fast path. Both passes run at parallelism 1: worker pools would
// measure the scheduler, not the arithmetic.
func packedCRT(ctx context.Context, c *PackedCRT, n, bits int) error {
	c.N, c.Bits = n, bits
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return err
	}
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(i%97) + 1)
	}
	cs, err := key.PublicKey.EncryptVec(ctx, rand.Reader, nil, ms, 0)
	if err != nil {
		return err
	}

	start := time.Now()
	if _, err := key.DecryptVec(ctx, cs, 1); err != nil {
		return err
	}
	c.CRTSeconds = time.Since(start).Seconds()

	plain := key.WithoutCRT()
	start = time.Now()
	if _, err := plain.DecryptVec(ctx, cs, 1); err != nil {
		return err
	}
	c.PlainSeconds = time.Since(start).Seconds()
	c.Speedup = speedup(c.PlainSeconds, c.CRTSeconds)
	return nil
}

// packedWire encrypts the same N values scalar and packed on one scheme
// instance and compares ciphertext counts, marshalled bytes and wall clock.
func packedWire(ctx context.Context, w *PackedWire, opt Options, n, bits int) error {
	w.N, w.Bits = n, bits
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return err
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%97) / 97
	}

	p := he.NewPaillier(&key.PublicKey, nil)
	start := time.Now()
	scalarCS, err := p.EncryptVec(ctx, vals)
	if err != nil {
		return err
	}
	w.EncryptScalarSeconds = time.Since(start).Seconds()

	if err := p.EnablePacking(opt.Parties); err != nil {
		return err
	}
	w.PackFactor = p.PackFactor()
	start = time.Now()
	packedCS, err := p.EncryptPacked(ctx, vals)
	if err != nil {
		return err
	}
	w.EncryptPackedSeconds = time.Since(start).Seconds()

	w.CiphertextsScalar = len(scalarCS)
	w.CiphertextsPacked = len(packedCS)
	for _, c := range scalarCS {
		w.BytesScalar += int64(len(c))
	}
	for _, c := range packedCS {
		w.BytesPacked += int64(len(c))
	}
	w.ByteReduction = speedup(float64(w.BytesScalar), float64(w.BytesPacked))
	w.EncryptSpeedup = speedup(w.EncryptScalarSeconds, w.EncryptPackedSeconds)
	return nil
}

// packedE2E wall-clocks one selection variant on a scalar consortium and a
// packed one, then checks both selected identical participants and compares
// total protocol bytes.
func packedE2E(ctx context.Context, opt Options, res *PackedResult, variant string) (*PackedE2E, error) {
	run := func(pack bool) (*vfps.Selection, error) {
		d, err := vfps.GenerateDataset("Bank", res.Rows)
		if err != nil {
			return nil, err
		}
		pt, err := vfps.VerticalSplit(d, res.Parties, opt.Seed+101)
		if err != nil {
			return nil, err
		}
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition:   pt,
			Labels:      d.Y,
			Classes:     d.Classes,
			Scheme:      "paillier",
			KeyBits:     res.KeyBits,
			ShuffleSeed: opt.Seed + 303,
			Pack:        pack,
		})
		if err != nil {
			return nil, err
		}
		defer cons.Close()
		return cons.Select(ctx, opt.SelectCount, vfps.SelectOptions{
			K:          opt.K,
			NumQueries: res.Queries,
			Seed:       opt.Seed,
			TopK:       variant,
		})
	}
	scalar, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("%s scalar: %w", variant, err)
	}
	packed, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("%s packed: %w", variant, err)
	}
	e2e := &PackedE2E{
		Variant:       variant,
		ScalarSeconds: scalar.WallTime.Seconds(),
		PackedSeconds: packed.WallTime.Seconds(),
		Selected:      packed.Selected,
		SelectedMatch: equalInts(scalar.Selected, packed.Selected),
		BytesScalar:   scalar.Counts.WireBytes(),
		BytesPacked:   packed.Counts.WireBytes(),
	}
	e2e.Speedup = speedup(e2e.ScalarSeconds, e2e.PackedSeconds)
	e2e.ByteReduction = speedup(float64(e2e.BytesScalar), float64(e2e.BytesPacked))
	return e2e, nil
}

func packedTable(r *PackedResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Batched Paillier hot path (GOMAXPROCS=%d, degree=%d, pack=%d)",
			r.GOMAXPROCS, r.Parallelism, r.Wire.PackFactor),
		Header: []string{"workload", "baseline", "batched", "gain"},
	}
	c := r.CRT
	w := r.Wire
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("Decrypt n=%d b=%d (λ/μ vs CRT)", c.N, c.Bits),
			fmtSeconds(c.PlainSeconds), fmtSeconds(c.CRTSeconds),
			fmt.Sprintf("%.2fx", c.Speedup)},
		[]string{fmt.Sprintf("Wire bytes n=%d b=%d (S=%d)", w.N, w.Bits, w.PackFactor),
			fmt.Sprintf("%d B", w.BytesScalar), fmt.Sprintf("%d B", w.BytesPacked),
			fmt.Sprintf("%.2fx", w.ByteReduction)},
		[]string{"Encrypt scalar vs packed",
			fmtSeconds(w.EncryptScalarSeconds), fmtSeconds(w.EncryptPackedSeconds),
			fmt.Sprintf("%.2fx", w.EncryptSpeedup)},
	)
	for _, e := range r.EndToEnd {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("selection %s n=%d q=%d (match=%v, %.2fx fewer bytes)",
				e.Variant, r.Rows, r.Queries, e.SelectedMatch, e.ByteReduction),
			fmtSeconds(e.ScalarSeconds), fmtSeconds(e.PackedSeconds),
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}
	return t
}
