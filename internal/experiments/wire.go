package experiments

import (
	"context"
	"fmt"
	"runtime"

	"vfps"
	"vfps/internal/par"
	"vfps/internal/vfl"
	"vfps/internal/wire"
)

// WireMsgBench compares one representative protocol message's encoded size
// under the gob and binary codecs.
type WireMsgBench struct {
	Kind        string
	GobBytes    int64
	BinaryBytes int64
	// Reduction is GobBytes/BinaryBytes.
	Reduction float64
}

// WireE2E reports one gob-vs-binary end-to-end selection pair. SelectedMatch
// asserts the codec contract: the binary consortium selects the exact same
// participants. FramingReduction is the headline number — the shrink in
// non-ciphertext wire bytes (envelopes, field keys, ID lists, gob type
// descriptors), which is all a codec can change; ciphertext payload is fixed
// by the HE scheme.
type WireE2E struct {
	Variant string
	Packed  bool
	// Wall-clock selection durations.
	GobSeconds    float64
	BinarySeconds float64
	Selected      []int
	SelectedMatch bool
	// Total wire bytes (payload + framing) under each codec.
	GobBytes    int64
	BinaryBytes int64
	// Framing-only bytes under each codec.
	GobFramingBytes    int64
	BinaryFramingBytes int64
	// FramingReduction is GobFramingBytes/BinaryFramingBytes;
	// TotalReduction the same over payload+framing.
	FramingReduction float64
	TotalReduction   float64
}

// WireResult is the structured output of the wire-codec benchmark.
type WireResult struct {
	GOMAXPROCS  int
	Parallelism int
	Rows        int
	Queries     int
	Parties     int
	KeyBits     int
	Messages    []WireMsgBench
	EndToEnd    []WireE2E
	Table       *Table
}

// Wire benchmarks the compact binary codec against gob: representative
// message encodings in isolation, then full BASE and SM (Fagin) selections
// under real Paillier with each codec, packed and unpacked. The selected
// sets must match exactly; the framing (non-ciphertext) bytes shrink by the
// factor recorded in FramingReduction.
func Wire(ctx context.Context, opt Options) (*WireResult, error) {
	return wireAt(ctx, opt, 512)
}

// wireAt is Wire with the end-to-end key width injectable so unit tests can
// shrink it.
func wireAt(ctx context.Context, opt Options, e2eBits int) (*WireResult, error) {
	opt = opt.withDefaults()
	res := &WireResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Degree(),
		Parties:     opt.Parties,
		KeyBits:     e2eBits,
	}
	res.Rows = opt.Rows
	if res.Rows > 200 {
		res.Rows = 200
	}
	res.Queries = opt.Queries
	if res.Queries > 8 {
		res.Queries = 8
	}

	if err := wireMessages(res); err != nil {
		return nil, err
	}
	for _, variant := range []string{"base", "fagin"} {
		for _, packed := range []bool{false, true} {
			e2e, err := wireE2E(ctx, opt, res, variant, packed)
			if err != nil {
				return nil, err
			}
			res.EndToEnd = append(res.EndToEnd, *e2e)
		}
	}

	res.Table = wireTable(res)
	res.Table.Fprint(opt.Out)
	return res, nil
}

// wireMessages sizes representative protocol messages — the framing-heavy
// kinds the Fagin rounds send constantly — under both codecs.
func wireMessages(res *WireResult) error {
	ids := make([]int, 32)
	for i := range ids {
		ids[i] = 1000 + 3*i // sorted pseudo-ID batch: small positive deltas
	}
	msgs := []struct {
		kind string
		msg  wire.Message
	}{
		{"RankingBatchReq", &vfl.RankingBatchReq{Query: 117, Offset: 64, Count: 32}},
		{"RankingBatchResp b=32", &vfl.RankingBatchResp{PseudoIDs: ids}},
		{"EncryptCandidatesReq n=32", &vfl.EncryptCandidatesReq{Query: 117, PseudoIDs: ids}},
		{"NeighborSumReq k=10", &vfl.NeighborSumReq{Query: 117, PseudoIDs: ids[:10]}},
		{"FaginCollectReq", &vfl.FaginCollectReq{Query: 117, K: 10, Batch: 32}},
	}
	for _, m := range msgs {
		graw, err := wire.Gob().Marshal(m.msg)
		if err != nil {
			return err
		}
		braw, err := wire.Binary().Marshal(m.msg)
		if err != nil {
			return err
		}
		res.Messages = append(res.Messages, WireMsgBench{
			Kind:        m.kind,
			GobBytes:    int64(len(graw)),
			BinaryBytes: int64(len(braw)),
			Reduction:   speedup(float64(len(graw)), float64(len(braw))),
		})
	}
	return nil
}

// wireE2E wall-clocks one selection variant on a gob consortium and a binary
// one, then checks both selected identical participants and compares total
// and framing-only protocol bytes.
func wireE2E(ctx context.Context, opt Options, res *WireResult, variant string, packed bool) (*WireE2E, error) {
	run := func(codec string) (*vfps.Selection, error) {
		d, err := vfps.GenerateDataset("Bank", res.Rows)
		if err != nil {
			return nil, err
		}
		pt, err := vfps.VerticalSplit(d, res.Parties, opt.Seed+101)
		if err != nil {
			return nil, err
		}
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition:   pt,
			Labels:      d.Y,
			Classes:     d.Classes,
			Scheme:      "paillier",
			KeyBits:     res.KeyBits,
			ShuffleSeed: opt.Seed + 303,
			Pack:        packed,
			Wire:        codec,
		})
		if err != nil {
			return nil, err
		}
		defer cons.Close()
		return cons.Select(ctx, opt.SelectCount, vfps.SelectOptions{
			K:          opt.K,
			NumQueries: res.Queries,
			Seed:       opt.Seed,
			TopK:       variant,
		})
	}
	gob, err := run("gob")
	if err != nil {
		return nil, fmt.Errorf("%s gob: %w", variant, err)
	}
	bin, err := run("binary")
	if err != nil {
		return nil, fmt.Errorf("%s binary: %w", variant, err)
	}
	e2e := &WireE2E{
		Variant:            variant,
		Packed:             packed,
		GobSeconds:         gob.WallTime.Seconds(),
		BinarySeconds:      bin.WallTime.Seconds(),
		Selected:           bin.Selected,
		SelectedMatch:      equalInts(gob.Selected, bin.Selected),
		GobBytes:           gob.Counts.WireBytes(),
		BinaryBytes:        bin.Counts.WireBytes(),
		GobFramingBytes:    gob.Counts.FramingBytes,
		BinaryFramingBytes: bin.Counts.FramingBytes,
	}
	e2e.FramingReduction = speedup(float64(e2e.GobFramingBytes), float64(e2e.BinaryFramingBytes))
	e2e.TotalReduction = speedup(float64(e2e.GobBytes), float64(e2e.BinaryBytes))
	return e2e, nil
}

func wireTable(r *WireResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Wire codec: gob vs binary v1 (GOMAXPROCS=%d, degree=%d, b=%d-bit keys)",
			r.GOMAXPROCS, r.Parallelism, r.KeyBits),
		Header: []string{"workload", "gob", "binary", "gain"},
	}
	for _, m := range r.Messages {
		t.Rows = append(t.Rows, []string{
			"msg " + m.Kind,
			fmt.Sprintf("%d B", m.GobBytes), fmt.Sprintf("%d B", m.BinaryBytes),
			fmt.Sprintf("%.2fx", m.Reduction),
		})
	}
	for _, e := range r.EndToEnd {
		pack := "scalar"
		if e.Packed {
			pack = "packed"
		}
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("framing bytes %s/%s n=%d q=%d (match=%v)",
				e.Variant, pack, r.Rows, r.Queries, e.SelectedMatch),
				fmt.Sprintf("%d B", e.GobFramingBytes), fmt.Sprintf("%d B", e.BinaryFramingBytes),
				fmt.Sprintf("%.2fx", e.FramingReduction)},
			[]string{fmt.Sprintf("total bytes %s/%s", e.Variant, pack),
				fmt.Sprintf("%d B", e.GobBytes), fmt.Sprintf("%d B", e.BinaryBytes),
				fmt.Sprintf("%.2fx", e.TotalReduction)},
			[]string{fmt.Sprintf("selection %s/%s wall clock", e.Variant, pack),
				fmtSeconds(e.GobSeconds), fmtSeconds(e.BinarySeconds),
				fmt.Sprintf("%.2fx", speedup(e.GobSeconds, e.BinarySeconds))},
		)
	}
	return t
}
