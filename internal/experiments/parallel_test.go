package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestParallelBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    60,
		Queries: 4,
		K:       3,
		Parties: 3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken kernel sizes: the real harness uses N=1000 at 1024-bit keys.
	res, err := parallelAt(context.Background(), opt, 32, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.GOMAXPROCS < 1 || res.Parallelism < 1 {
		t.Fatalf("degrees: %+v", res)
	}
	v := res.Vec
	if v.EncryptSerialSeconds <= 0 || v.EncryptParallelSeconds <= 0 ||
		v.EncryptPooledSeconds <= 0 || v.DecryptSerialSeconds <= 0 {
		t.Fatalf("missing kernel timings: %+v", v)
	}
	if v.EncryptParallelSpeedup <= 0 || v.EncryptPooledSpeedup <= 0 {
		t.Fatalf("missing speedups: %+v", v)
	}
	if len(res.EndToEnd) != 2 {
		t.Fatalf("want base+fagin end-to-end rows, got %d", len(res.EndToEnd))
	}
	for _, e := range res.EndToEnd {
		if !e.SelectedMatch {
			t.Fatalf("%s: parallel run selected a different set", e.Variant)
		}
		if !e.CountsMatch {
			t.Fatalf("%s: operation counts differ under concurrency", e.Variant)
		}
		if len(e.Selected) == 0 || e.SerialSeconds <= 0 || e.ParallelSeconds <= 0 {
			t.Fatalf("%s: incomplete row %+v", e.Variant, e)
		}
	}
	if !strings.Contains(buf.String(), "Parallel HE pipeline") {
		t.Fatalf("table not printed:\n%s", buf.String())
	}
}
