package experiments

import (
	"context"
	"fmt"

	"vfps"
)

// ExtPruningResult reports how Fagin's pruning factor (instances encrypted
// per query, BASE / SM) grows with the dataset size — the mechanism behind
// the paper's large SUSY-scale reductions (46× at N = 5M in Fig. 9). This
// extends the paper's fixed-N ablation with an N sweep.
type ExtPruningResult struct {
	RowCounts []int
	// Factor[dataset][i] = BASE candidates / SM candidates at RowCounts[i].
	Factor map[string][]float64
	Table  *Table
}

// ExtPruning sweeps the instance count and measures the candidate-pruning
// factor of the Fagin optimization.
func ExtPruning(ctx context.Context, opt Options) (*ExtPruningResult, error) {
	opt = opt.withDefaults()
	datasets := opt.Datasets
	if len(datasets) == 10 {
		datasets = []string{"Phishing", "SUSY"}
	}
	rowCounts := []int{200, 400, 800, 1600, 3200}
	res := &ExtPruningResult{RowCounts: rowCounts, Factor: map[string][]float64{}}
	res.Table = &Table{
		Title:  "Extension: Fagin pruning factor vs dataset size",
		Header: []string{"Dataset", "N=200", "N=400", "N=800", "N=1600", "N=3200"},
	}
	for _, ds := range datasets {
		factors := make([]float64, len(rowCounts))
		for i, rows := range rowCounts {
			local := opt
			local.Rows = rows
			local.ScaleRows = false
			cons, _, err := buildConsortium(ctx, ds, local, opt.Parties, 0)
			if err != nil {
				return nil, err
			}
			so := local.selectOpts()
			sel, err := cons.Select(ctx, opt.SelectCount, so)
			if err != nil {
				return nil, fmt.Errorf("%s/N=%d: %w", ds, rows, err)
			}
			factors[i] = float64(rows-1) / sel.AvgCandidates
		}
		res.Factor[ds] = factors
		row := []string{ds}
		for _, f := range factors {
			row = append(row, fmt.Sprintf("%.2fx", f))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// ExtTopkResult compares the three top-k protocols (BASE, Fagin, TA) on the
// axes that matter in the encrypted setting: candidates encrypted per query,
// protocol messages, and projected cost. It substantiates §IV-B's choice of
// Fagin: TA sees fewer candidates but pays a leader round trip per scan
// batch for its threshold check.
type ExtTopkResult struct {
	// Rows[i] = {protocol, candidates/query, messages, projected seconds}.
	Protocols  []string
	Candidates []float64
	Messages   []int64
	Projected  []float64
	Table      *Table
}

// ExtTopk runs the same selection under each top-k protocol.
func ExtTopk(ctx context.Context, opt Options) (*ExtTopkResult, error) {
	opt = opt.withDefaults()
	ds := opt.Datasets[0]
	cons, _, err := buildConsortium(ctx, ds, opt, opt.Parties, 0)
	if err != nil {
		return nil, err
	}
	res := &ExtTopkResult{Protocols: []string{"base", "fagin", "threshold"}}
	for _, proto := range res.Protocols {
		so := opt.selectOpts()
		so.TopK = proto
		sel, err := cons.Select(ctx, opt.SelectCount, so)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", ds, proto, err)
		}
		res.Candidates = append(res.Candidates, sel.AvgCandidates)
		res.Messages = append(res.Messages, sel.Counts.Messages)
		res.Projected = append(res.Projected, sel.ProjectedSeconds)
	}
	res.Table = &Table{
		Title:  fmt.Sprintf("Extension: top-k protocol comparison (%s)", ds),
		Header: []string{"Protocol", "Avg candidates/query", "Messages", "Projected selection (s)"},
	}
	for i, proto := range res.Protocols {
		res.Table.Rows = append(res.Table.Rows, []string{
			proto,
			fmt.Sprintf("%.1f", res.Candidates[i]),
			fmt.Sprintf("%d", res.Messages[i]),
			fmtSeconds(res.Projected[i]),
		})
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// ExtSchemeResult compares the two privacy-protection techniques the paper
// discusses in §II that preserve exact aggregates: additively homomorphic
// encryption (Paillier rates) and SMC-style pairwise masking (secagg). Same
// protocol, same candidate pruning — only the protection layer differs.
type ExtSchemeResult struct {
	Schemes   []string
	Projected []float64 // projected selection seconds
	Bytes     []int64   // bytes shipped by participants and servers
	Table     *Table
}

// ExtScheme runs the same selection under each protection scheme.
func ExtScheme(ctx context.Context, opt Options) (*ExtSchemeResult, error) {
	opt = opt.withDefaults()
	ds := opt.Datasets[0]
	d, err := vfps.GenerateDataset(ds, opt.rowsFor(ds))
	if err != nil {
		return nil, err
	}
	pt, err := vfps.VerticalSplit(d, opt.Parties, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	res := &ExtSchemeResult{Schemes: []string{"paillier (HE)", "secagg (masking)"}}
	for _, scheme := range []string{"plain", "secagg"} {
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition: pt, Labels: d.Y, Classes: d.Classes,
			Scheme: scheme, ShuffleSeed: opt.Seed + 303,
		})
		if err != nil {
			return nil, err
		}
		sel, err := cons.Select(ctx, opt.SelectCount, opt.selectOpts())
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", ds, scheme, err)
		}
		res.Projected = append(res.Projected, sel.ProjectedSeconds)
		res.Bytes = append(res.Bytes, sel.Counts.WireBytes())
	}
	res.Table = &Table{
		Title:  fmt.Sprintf("Extension: protection-scheme comparison (%s)", ds),
		Header: []string{"Scheme", "Projected selection (s)", "Payload bytes"},
	}
	for i, s := range res.Schemes {
		res.Table.Rows = append(res.Table.Rows, []string{
			s, fmtSeconds(res.Projected[i]), fmt.Sprintf("%d", res.Bytes[i]),
		})
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// ExtDPResult reports the privacy/utility trade-off of the DP protection
// alternative (§II): selection fidelity and downstream accuracy as the
// per-release ε shrinks, substantiating the paper's remark that "adding
// noises inevitably affects the model accuracy".
type ExtDPResult struct {
	Epsilons []float64
	// Agreement[i] reports whether the DP run selected the same
	// sub-consortium as the exact protocol.
	Agreement []bool
	// Accuracy[i] is the downstream KNN accuracy on the DP selection.
	Accuracy []float64
	// ExactAccuracy is the downstream accuracy of the exact protocol's
	// selection.
	ExactAccuracy float64
	Table         *Table
}

// ExtDP sweeps ε on one dataset.
func ExtDP(ctx context.Context, opt Options) (*ExtDPResult, error) {
	opt = opt.withDefaults()
	ds := opt.Datasets[0]
	d, err := vfps.GenerateDataset(ds, opt.rowsFor(ds))
	if err != nil {
		return nil, err
	}
	pt, err := vfps.VerticalSplit(d, opt.Parties, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	exactCons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes, Scheme: "plain", ShuffleSeed: opt.Seed + 303,
	})
	if err != nil {
		return nil, err
	}
	exact, err := exactCons.Select(ctx, opt.SelectCount, opt.selectOpts())
	if err != nil {
		return nil, err
	}
	exactEval, err := exactCons.Evaluate(vfps.ModelKNN, exact.Selected, opt.evalOpts())
	if err != nil {
		return nil, err
	}
	res := &ExtDPResult{
		Epsilons:      []float64{0.01, 0.1, 1, 10, 100},
		ExactAccuracy: exactEval.Accuracy,
	}
	for _, eps := range res.Epsilons {
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition: pt, Labels: d.Y, Classes: d.Classes,
			Scheme: "dp", DPEpsilon: eps, ShuffleSeed: opt.Seed + 303,
		})
		if err != nil {
			return nil, err
		}
		sel, err := cons.Select(ctx, opt.SelectCount, opt.selectOpts())
		if err != nil {
			return nil, fmt.Errorf("%s/eps=%g: %w", ds, eps, err)
		}
		ev, err := cons.Evaluate(vfps.ModelKNN, sel.Selected, opt.evalOpts())
		if err != nil {
			return nil, err
		}
		res.Agreement = append(res.Agreement, sameSet(sel.Selected, exact.Selected))
		res.Accuracy = append(res.Accuracy, ev.Accuracy)
	}
	res.Table = &Table{
		Title:  fmt.Sprintf("Extension: DP protection privacy/utility trade-off (%s; exact acc %.4f)", ds, res.ExactAccuracy),
		Header: []string{"Epsilon", "Matches exact selection", "Downstream accuracy"},
	}
	for i, eps := range res.Epsilons {
		match := "no"
		if res.Agreement[i] {
			match = "yes"
		}
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%g", eps), match, fmtAcc(res.Accuracy[i]),
		})
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := map[int]bool{}
	for _, v := range a {
		in[v] = true
	}
	for _, v := range b {
		if !in[v] {
			return false
		}
	}
	return true
}

// ExtBatchResult reports the Fagin mini-batch size trade-off: larger batches
// mean fewer protocol rounds but more over-scanning (larger candidate sets),
// the b knob of the paper's Step ①–② streaming.
type ExtBatchResult struct {
	Batches    []int
	Candidates []float64 // avg per query
	Rounds     []float64 // avg per query
	Projected  []float64 // projected selection seconds
	Table      *Table
}

// ExtBatch sweeps the ranked-list streaming batch size on one dataset.
func ExtBatch(ctx context.Context, opt Options) (*ExtBatchResult, error) {
	opt = opt.withDefaults()
	ds := opt.Datasets[0]
	d, err := vfps.GenerateDataset(ds, opt.rowsFor(ds))
	if err != nil {
		return nil, err
	}
	pt, err := vfps.VerticalSplit(d, opt.Parties, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	batches := []int{1, 8, 32, 128, 512}
	res := &ExtBatchResult{Batches: batches}
	for _, b := range batches {
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition: pt, Labels: d.Y, Classes: d.Classes,
			Scheme: "plain", ShuffleSeed: opt.Seed + 303, FaginBatch: b,
		})
		if err != nil {
			return nil, err
		}
		sel, err := cons.Select(ctx, opt.SelectCount, opt.selectOpts())
		if err != nil {
			return nil, fmt.Errorf("%s/batch=%d: %w", ds, b, err)
		}
		res.Candidates = append(res.Candidates, sel.AvgCandidates)
		res.Rounds = append(res.Rounds, float64(sel.Counts.Messages)/float64(opt.Queries))
		res.Projected = append(res.Projected, sel.ProjectedSeconds)
	}
	res.Table = &Table{
		Title:  fmt.Sprintf("Extension: Fagin mini-batch size trade-off (%s)", ds),
		Header: []string{"Batch b", "Avg candidates/query", "Msgs/query", "Projected selection (s)"},
	}
	for i, b := range batches {
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f", res.Candidates[i]),
			fmt.Sprintf("%.1f", res.Rounds[i]),
			fmtSeconds(res.Projected[i]),
		})
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}
