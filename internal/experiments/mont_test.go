package experiments

import (
	"context"
	"fmt"
	"testing"

	"vfps"
)

// TestMontSelectionIdentity is the acceptance gate for the Montgomery kernel:
// across {serial, parallel} × {scalar, packed} × {windowed pools on/off},
// selections with the kernel forced on are bit-identical to the same
// configuration with the kernel forced off (pure math/big).
func TestMontSelectionIdentity(t *testing.T) {
	ctx := context.Background()
	d, err := vfps.GenerateDataset("Bank", 60)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := vfps.VerticalSplit(d, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mont, parallelism, window int, pack bool) []int {
		t.Helper()
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition:     pt,
			Labels:        d.Y,
			Classes:       d.Classes,
			Scheme:        "paillier",
			KeyBits:       256,
			ShuffleSeed:   303,
			Parallelism:   parallelism,
			Pack:          pack,
			EncryptWindow: window,
			Mont:          mont,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cons.Close()
		sel, err := cons.Select(ctx, 2, vfps.SelectOptions{
			K:          3,
			NumQueries: 4,
			Seed:       1,
			TopK:       "fagin",
		})
		if err != nil {
			t.Fatal(err)
		}
		return sel.Selected
	}
	for _, parallelism := range []int{1, 0} {
		for _, pack := range []bool{false, true} {
			for _, window := range []int{0, -1} {
				name := fmt.Sprintf("par=%d pack=%v window=%d", parallelism, pack, window)
				on := run(1, parallelism, window, pack)
				off := run(-1, parallelism, window, pack)
				if len(on) == 0 || !equalInts(on, off) {
					t.Fatalf("%s: mont-on selected %v, mont-off selected %v", name, on, off)
				}
			}
		}
	}
}
