package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestChurnBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    48,
		Queries: 3,
		K:       3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken key width: the real harness runs 512-bit keys.
	res, err := churnAt(context.Background(), opt, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseParties != 6 || res.FinalParties != 7 {
		t.Fatalf("party floor not applied: %d -> %d", res.BaseParties, res.FinalParties)
	}
	if !res.JoinMatch || !res.LeaveMatch || !res.RevisitMatch || !res.TAMatch {
		t.Fatalf("identity contract violated: join=%v leave=%v revisit=%v ta=%v",
			res.JoinMatch, res.LeaveMatch, res.RevisitMatch, res.TAMatch)
	}
	if res.ColdEncryptions <= 0 || res.JoinEncryptions <= 0 {
		t.Fatalf("encryption accounting missing: cold=%d join=%d", res.ColdEncryptions, res.JoinEncryptions)
	}
	// The in-place join pays encryption essentially only for the joiner: at
	// 6 surviving parties the delta cache must cut encryptions well past the
	// 2x gate bench_compare.sh enforces.
	if res.HEReduction < 2.0 {
		t.Fatalf("incremental join reduced encryptions only %.2fx (cold %d, join %d)",
			res.HEReduction, res.ColdEncryptions, res.JoinEncryptions)
	}
	if res.RevisitHEOps != 0 {
		t.Fatalf("roster revisit still paid %d HE ops", res.RevisitHEOps)
	}
	if res.TASerialSeconds <= 0 || res.TASpecSeconds <= 0 {
		t.Fatalf("TA timings missing: %v vs %v", res.TASerialSeconds, res.TASpecSeconds)
	}
	if res.TASpecWaste < 0 {
		t.Fatalf("negative speculation waste %d", res.TASpecWaste)
	}
	out := buf.String()
	if !strings.Contains(out, "Membership churn") || !strings.Contains(out, "incremental join") {
		t.Fatalf("table output missing:\n%s", out)
	}
}
