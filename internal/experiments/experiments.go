// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic dataset suite: Table I
// (motivating comparison), Table IV (accuracy grid), Table V (end-to-end
// time grid), and Figures 4–9 (selection time, training time, diversity,
// scalability, impact of k, candidate pruning). Each experiment returns a
// formatted table plus structured rows for assertions, and prints through
// the Options writer.
//
// Times reported as "projected seconds" price the counted protocol
// operations under the calibrated cost model (internal/costmodel), which
// reproduces the paper's time *shape* at paper scale; wall-clock times of
// the scaled-down local run are reported alongside where meaningful.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"vfps"
	"vfps/internal/dataset"
)

// Options scales an experiment run. The zero value gives a fast,
// test-friendly configuration; cmd/vfpsbench raises the knobs.
type Options struct {
	// Rows caps instances per dataset (default 400).
	Rows int
	// Queries is the KNN query-sample count for selection (default 16).
	Queries int
	// K is the proxy-KNN neighbour count (default 10, clamped to Rows/10).
	K int
	// Parties is the consortium size (default 4).
	Parties int
	// SelectCount is the sub-consortium size (default Parties/2).
	SelectCount int
	// MaxEpochs bounds downstream LR/MLP training (default 15).
	MaxEpochs int
	// LRGrid overrides the downstream learning-rate grid (default {0.01}
	// for speed; pass the paper's {0.001,0.01,0.1} for full fidelity).
	LRGrid []float64
	// Datasets restricts the dataset suite (default all ten).
	Datasets []string
	// Seed drives all sampling.
	Seed int64
	// IncludeGBDT adds the gradient-boosted-trees extension model as a
	// fourth row group in the Table IV/V grids.
	IncludeGBDT bool
	// Repeats averages the Table IV/V grids over this many independent runs
	// with different seeds (the paper averages over five). Default 1.
	Repeats int
	// ScaleRows sizes each dataset relative to its paper-scale row count
	// (log-proportional, Rows as the cap) instead of using Rows uniformly,
	// so per-dataset cost columns spread the way the paper's do.
	// cmd/vfpsbench enables this; unit tests keep uniform rows.
	ScaleRows bool
	// Out receives the formatted tables (default io.Discard).
	Out io.Writer
}

// rowsFor returns the instance budget for one dataset.
func (o Options) rowsFor(name string) int {
	if !o.ScaleRows {
		return o.Rows
	}
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return o.Rows
	}
	maxInst := 0
	for _, s := range dataset.PaperSpecs {
		if s.Instances > maxInst {
			maxInst = s.Instances
		}
	}
	frac := math.Log(float64(spec.Instances)) / math.Log(float64(maxInst))
	rows := int(frac * float64(o.Rows))
	if rows < 120 {
		rows = 120
	}
	if rows > o.Rows {
		rows = o.Rows
	}
	return rows
}

func (o Options) withDefaults() Options {
	if o.Rows <= 0 {
		o.Rows = 400
	}
	if o.Queries <= 0 {
		o.Queries = 16
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.K > o.Rows/10 {
		o.K = o.Rows / 10
	}
	if o.K < 1 {
		o.K = 1
	}
	if o.Parties <= 0 {
		o.Parties = 4
	}
	if o.SelectCount <= 0 {
		o.SelectCount = o.Parties / 2
	}
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 15
	}
	if len(o.LRGrid) == 0 {
		o.LRGrid = []float64{0.01}
	}
	if len(o.Datasets) == 0 {
		o.Datasets = vfps.DatasetNames()
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Table is a printable result grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// methodOrder is the comparison order used throughout the paper's tables.
var methodOrder = []vfps.Method{vfps.MethodRandom, vfps.MethodShapley, vfps.MethodVFMine, vfps.MethodVFPS}

// methodLabel renders method names in the paper's styling.
func methodLabel(m vfps.Method) string {
	switch m {
	case vfps.MethodRandom:
		return "RANDOM"
	case vfps.MethodShapley:
		return "SHAPLEY"
	case vfps.MethodVFMine:
		return "VFMINE"
	case vfps.MethodVFPS:
		return "VFPS-SM"
	case vfps.MethodVFPSBase:
		return "VFPS-SM-BASE"
	default:
		return string(m)
	}
}

// buildConsortium generates a dataset, splits it vertically and wires the
// consortium with the simulated HE scheme (real-Paillier correctness is
// covered by the test suites; sweeps use the op-count-preserving backend).
func buildConsortium(ctx context.Context, name string, opt Options, parties, dups int) (*vfps.Consortium, *vfps.Dataset, error) {
	d, err := vfps.GenerateDataset(name, opt.rowsFor(name))
	if err != nil {
		return nil, nil, err
	}
	pt, err := vfps.VerticalSplit(d, parties, opt.Seed+101)
	if err != nil {
		return nil, nil, err
	}
	if dups > 0 {
		pt = pt.WithDuplicates(dups, opt.Seed+202)
	}
	cons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition:   pt,
		Labels:      d.Y,
		Classes:     d.Classes,
		Scheme:      "plain",
		ShuffleSeed: opt.Seed + 303,
	})
	if err != nil {
		return nil, nil, err
	}
	return cons, d, nil
}

func (o Options) selectOpts() vfps.SelectOptions {
	return vfps.SelectOptions{K: o.K, NumQueries: o.Queries, Seed: o.Seed}
}

func (o Options) evalOpts() vfps.EvalOptions {
	return vfps.EvalOptions{K: o.K, MaxEpochs: o.MaxEpochs, LRGrid: o.LRGrid, Seed: o.Seed, SplitSeed: o.Seed + 404}
}

func fmtSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

func fmtAcc(a float64) string { return fmt.Sprintf("%.4f", a) }
