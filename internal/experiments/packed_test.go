package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestPackedBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    60,
		Queries: 4,
		K:       3,
		Parties: 3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken kernel sizes: the real harness uses N=1000 at 1024-bit keys.
	res, err := packedAt(context.Background(), opt, 32, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	c := res.CRT
	if c.CRTSeconds <= 0 || c.PlainSeconds <= 0 || c.Speedup <= 0 {
		t.Fatalf("missing CRT timings: %+v", c)
	}
	w := res.Wire
	if w.PackFactor < 2 {
		t.Fatalf("pack factor %d at %d-bit keys, want ≥ 2", w.PackFactor, w.Bits)
	}
	if w.CiphertextsPacked >= w.CiphertextsScalar {
		t.Fatalf("packing did not reduce ciphertexts: %+v", w)
	}
	if w.ByteReduction <= 1 {
		t.Fatalf("packing did not reduce bytes: %+v", w)
	}
	if len(res.EndToEnd) != 2 {
		t.Fatalf("want base+fagin end-to-end rows, got %d", len(res.EndToEnd))
	}
	for _, e := range res.EndToEnd {
		if !e.SelectedMatch {
			t.Fatalf("%s: packed run selected a different set", e.Variant)
		}
		if e.BytesPacked >= e.BytesScalar {
			t.Fatalf("%s: packed run sent %d bytes, scalar %d", e.Variant, e.BytesPacked, e.BytesScalar)
		}
		if len(e.Selected) == 0 || e.ScalarSeconds <= 0 || e.PackedSeconds <= 0 {
			t.Fatalf("%s: incomplete row %+v", e.Variant, e)
		}
	}
	if !strings.Contains(buf.String(), "Batched Paillier hot path") {
		t.Fatalf("table not printed:\n%s", buf.String())
	}
}
