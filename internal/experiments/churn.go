package experiments

import (
	"context"
	"fmt"
	"reflect"
	"runtime"

	"vfps"
	"vfps/internal/core"
	"vfps/internal/obs"
	"vfps/internal/par"
	"vfps/internal/vfl"
)

// ChurnResult is the structured output of the membership-churn benchmark:
// what an online consortium pays (and must not get wrong) when participants
// join and leave between selections instead of the deployment being rebuilt.
type ChurnResult struct {
	GOMAXPROCS  int
	Parallelism int
	Rows        int
	Queries     int
	// BaseParties is the roster size before the join; FinalParties after.
	BaseParties  int
	FinalParties int
	KeyBits      int

	// ColdEncryptions is the encryption count of a selection on a consortium
	// cold-built at the final membership; JoinEncryptions is the count of the
	// same selection after an in-place join on a warm consortium, where the
	// delta cache spares every survivor re-encryption. HEReduction is the
	// headline gate: Cold/Join, required >= 2 for base rosters of 6+.
	ColdEncryptions int64
	JoinEncryptions int64
	HEReduction     float64
	// JoinMatch asserts the churn identity contract on the join: the warm
	// consortium's post-join selection equals the cold rebuild bit for bit
	// (picks, objective value and similarity matrix).
	JoinMatch bool
	// LeaveMatch asserts the same contract after a removal.
	LeaveMatch bool

	// RevisitHEOps counts encrypted operations of a selection whose
	// (roster, queries, variant, K) key recurred with the set-keyed
	// similarity cache enabled — required 0, the phase is skipped outright.
	RevisitHEOps int64
	RevisitMatch bool

	// TASerialSeconds / TASpecSeconds time the threshold-variant selection
	// with speculative round decryption off and on; TASpecWaste is the
	// vfps_ta_speculative_waste_total counter after the speculative run
	// (decryptions of discarded rounds — surfaced, never billed). TAMatch
	// asserts both runs select identically.
	TASerialSeconds float64
	TASpecSeconds   float64
	TASpeedup       float64
	TASpecWaste     int64
	TAMatch         bool

	Table *Table
}

// churnPartition builds a partition holding the listed parties of pt.
func churnPartition(pt *vfps.Partition, parties []int) *vfps.Partition {
	out := &vfps.Partition{}
	for _, p := range parties {
		out.Parties = append(out.Parties, pt.Parties[p])
		out.FeatureIdx = append(out.FeatureIdx, pt.FeatureIdx[p])
		out.DuplicateOf = append(out.DuplicateOf, -1)
	}
	return out
}

// Churn benchmarks online membership changes against cold rebuilds: an
// in-place join must reuse every survivor's cached ciphertexts (paying
// encryption only for the joiner), leaves and roster revisits must stay
// bit-identical to cold selections, and the threshold scan's speculative
// decryption must change wall clock only, never the answer.
func Churn(ctx context.Context, opt Options) (*ChurnResult, error) {
	return churnAt(ctx, opt, 512)
}

// churnAt is Churn with the Paillier key width injectable so unit tests can
// shrink it.
func churnAt(ctx context.Context, opt Options, e2eBits int) (*ChurnResult, error) {
	opt = opt.withDefaults()
	res := &ChurnResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Degree(),
		KeyBits:     e2eBits,
	}
	// The survivor-reuse gate concerns non-trivial rosters: floor the
	// pre-join membership at six parties.
	res.BaseParties = opt.Parties
	if res.BaseParties < 6 {
		res.BaseParties = 6
	}
	res.FinalParties = res.BaseParties + 1
	res.Rows = opt.Rows
	if res.Rows > 120 {
		res.Rows = 120
	}
	res.Queries = opt.Queries
	if res.Queries > 6 {
		res.Queries = 6
	}

	d, err := vfps.GenerateDataset("Bank", res.Rows)
	if err != nil {
		return nil, err
	}
	full, err := vfps.VerticalSplit(d, res.FinalParties, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	queries := core.SampleQueries(res.Rows, res.Queries, opt.Seed)
	k := opt.K
	if k > 5 {
		k = 5
	}
	count := 2
	mk := func(name string, parties []int, o *obs.Observer, speculate bool) (*vfl.Cluster, error) {
		return vfl.NewLocalCluster(ctx, vfl.ClusterConfig{
			Partition:   churnPartition(full, parties),
			Scheme:      "paillier",
			KeyBits:     e2eBits,
			ShuffleSeed: opt.Seed + 303,
			DeltaCache:  true,
			SpeculateTA: speculate,
			Wire:        "binary",
			Obs:         o,
			Instance:    "churn/" + name,
		})
	}
	sel := func(cl *vfl.Cluster, variant vfl.Variant) (*core.Selection, error) {
		// VariantBase keeps the candidate set membership-invariant (every
		// instance, every query), so a survivor's ciphertext blocks are
		// byte-stable across the join and the delta cache can withhold all
		// of them.
		return core.Select(ctx, cl.Leader, count, core.Config{K: k, Queries: queries, Variant: variant})
	}
	identical := func(a, b *core.Selection) bool {
		return equalInts(a.Selected, b.Selected) && a.Value == b.Value && reflect.DeepEqual(a.W, b.W)
	}

	// Cold rebuild at the final membership: the baseline an online
	// deployment would pay for every membership change.
	roster := make([]int, res.FinalParties)
	for i := range roster {
		roster[i] = i
	}
	coldCl, err := mk("cold", roster, nil, false)
	if err != nil {
		return nil, err
	}
	defer coldCl.Close()
	cold, err := sel(coldCl, vfl.VariantBase)
	if err != nil {
		return nil, fmt.Errorf("churn cold arm: %w", err)
	}
	res.ColdEncryptions = cold.Counts.Encryptions

	// Online consortium: warm at the base membership, then join in place.
	liveCl, err := mk("live", roster[:res.BaseParties], nil, false)
	if err != nil {
		return nil, err
	}
	defer liveCl.Close()
	if _, err := sel(liveCl, vfl.VariantBase); err != nil {
		return nil, fmt.Errorf("churn warm-up: %w", err)
	}
	if _, err := liveCl.AddParticipant(full.Parties[res.BaseParties]); err != nil {
		return nil, fmt.Errorf("churn join: %w", err)
	}
	join, err := sel(liveCl, vfl.VariantBase)
	if err != nil {
		return nil, fmt.Errorf("churn join arm: %w", err)
	}
	res.JoinEncryptions = join.Counts.Encryptions
	res.HEReduction = speedup(float64(res.ColdEncryptions), float64(res.JoinEncryptions))
	res.JoinMatch = identical(join, cold)

	// Leave: drop a survivor in place and compare against a cold twin.
	if err := liveCl.RemoveParticipant(1); err != nil {
		return nil, fmt.Errorf("churn leave: %w", err)
	}
	leave, err := sel(liveCl, vfl.VariantBase)
	if err != nil {
		return nil, fmt.Errorf("churn leave arm: %w", err)
	}
	leaveRoster := append([]int{0}, roster[2:]...)
	coldLeaveCl, err := mk("cold-leave", leaveRoster, nil, false)
	if err != nil {
		return nil, err
	}
	defer coldLeaveCl.Close()
	coldLeave, err := sel(coldLeaveCl, vfl.VariantBase)
	if err != nil {
		return nil, fmt.Errorf("churn cold-leave arm: %w", err)
	}
	res.LeaveMatch = identical(leave, coldLeave)

	// Roster revisit: with the set-keyed similarity cache, a recurring
	// (roster, queries, variant, K) key skips the encrypted phase outright.
	cache := core.NewSimCache(0)
	cached := core.Config{K: k, Queries: queries, Variant: vfl.VariantBase, Cache: cache}
	first, err := core.Select(ctx, liveCl.Leader, count, cached)
	if err != nil {
		return nil, fmt.Errorf("churn revisit store: %w", err)
	}
	revisit, err := core.Select(ctx, liveCl.Leader, count, cached)
	if err != nil {
		return nil, fmt.Errorf("churn revisit arm: %w", err)
	}
	res.RevisitHEOps = revisit.Counts.Encryptions + revisit.Counts.Decryptions + revisit.Counts.CipherAdds
	res.RevisitMatch = identical(revisit, first)

	// Speculative TA: same threshold selection, speculation off then on.
	serialCl, err := mk("ta-serial", roster, nil, false)
	if err != nil {
		return nil, err
	}
	defer serialCl.Close()
	taSerial, err := sel(serialCl, vfl.VariantThreshold)
	if err != nil {
		return nil, fmt.Errorf("churn ta-serial arm: %w", err)
	}
	o := obs.NewObserver(0)
	specCl, err := mk("ta-spec", roster, o, true)
	if err != nil {
		return nil, err
	}
	defer specCl.Close()
	taSpec, err := sel(specCl, vfl.VariantThreshold)
	if err != nil {
		return nil, fmt.Errorf("churn ta-spec arm: %w", err)
	}
	res.TASerialSeconds = taSerial.WallTime.Seconds()
	res.TASpecSeconds = taSpec.WallTime.Seconds()
	res.TASpeedup = speedup(res.TASerialSeconds, res.TASpecSeconds)
	res.TAMatch = equalInts(taSerial.Selected, taSpec.Selected) &&
		taSerial.Counts.Decryptions == taSpec.Counts.Decryptions
	for _, fam := range o.Registry().Snapshot() {
		if fam.Name == "vfps_ta_speculative_waste_total" {
			for _, s := range fam.Series {
				res.TASpecWaste += int64(s.Value)
			}
		}
	}

	res.Table = churnTable(res)
	res.Table.Fprint(opt.Out)
	return res, nil
}

func churnTable(r *ChurnResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Membership churn: in-place join/leave vs cold rebuild (n=%d q=%d p=%d->%d, %d-bit keys)",
			r.Rows, r.Queries, r.BaseParties, r.FinalParties, r.KeyBits),
		Header: []string{"arm", "encryptions", "identity", "note"},
	}
	t.Rows = append(t.Rows,
		[]string{"cold rebuild", fmt.Sprintf("%d", r.ColdEncryptions), "baseline", ""},
		[]string{"incremental join", fmt.Sprintf("%d", r.JoinEncryptions), fmt.Sprintf("%v", r.JoinMatch),
			fmt.Sprintf("%.2fx fewer encryptions", r.HEReduction)},
		[]string{"incremental leave", "", fmt.Sprintf("%v", r.LeaveMatch), "submatrix identity vs cold twin"},
		[]string{"roster revisit", fmt.Sprintf("%d", r.RevisitHEOps), fmt.Sprintf("%v", r.RevisitMatch),
			"set-keyed cache, 0 HE ops expected"},
		[]string{"speculative TA", "", fmt.Sprintf("%v", r.TAMatch),
			fmt.Sprintf("%.3fs vs %.3fs serial, waste %d", r.TASpecSeconds, r.TASerialSeconds, r.TASpecWaste)},
	)
	return t
}
