package experiments

import (
	"context"
	"fmt"
	"io"

	"vfps"
)

// datasetRun caches one dataset's consortium and per-method selections so
// the accuracy and time grids reuse the same selection work.
type datasetRun struct {
	name       string
	cons       *vfps.Consortium
	selections map[vfps.Method]*vfps.BaselineSelection
	allParties []int
}

func runSelections(ctx context.Context, name string, opt Options) (*datasetRun, error) {
	cons, _, err := buildConsortium(ctx, name, opt, opt.Parties, 0)
	if err != nil {
		return nil, err
	}
	run := &datasetRun{name: name, cons: cons, selections: map[vfps.Method]*vfps.BaselineSelection{}}
	for i := 0; i < cons.P(); i++ {
		run.allParties = append(run.allParties, i)
	}
	for _, m := range methodOrder {
		sel, err := cons.SelectWith(ctx, m, opt.SelectCount, opt.selectOpts())
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, m, err)
		}
		run.selections[m] = sel
	}
	return run, nil
}

// parties returns the sub-consortium a method trains on ("ALL" = everyone).
func (r *datasetRun) parties(method string) []int {
	if method == "ALL" {
		return r.allParties
	}
	return r.selections[vfps.Method(method)].Selected
}

// selectionSeconds returns the projected selection cost of a method.
func (r *datasetRun) selectionSeconds(method string) float64 {
	if method == "ALL" || method == "RANDOM-label" {
		return 0
	}
	if sel, ok := r.selections[vfps.Method(method)]; ok {
		return sel.ProjectedSeconds
	}
	return 0
}

// gridMethods is the Table IV/V comparison set, ALL first.
var gridMethods = []string{"ALL", string(vfps.MethodRandom), string(vfps.MethodShapley), string(vfps.MethodVFMine), string(vfps.MethodVFPS)}

func gridLabel(m string) string {
	if m == "ALL" {
		return "ALL"
	}
	return methodLabel(vfps.Method(m))
}

// GridResult carries both Table IV (accuracy) and Table V (end-to-end time).
type GridResult struct {
	AccTable  *Table
	TimeTable *Table
	// Accuracy[model][method][dataset] is the downstream test accuracy.
	Accuracy map[string]map[string]map[string]float64
	// Seconds[model][method][dataset] is selection + training projected time.
	Seconds map[string]map[string]map[string]float64
}

var gridModels = []vfps.ModelName{vfps.ModelKNN, vfps.ModelLR, vfps.ModelMLP}

// modelsFor returns the downstream model set: the paper's three, plus GBDT
// when the options ask for the extended grid.
func modelsFor(opt Options) []vfps.ModelName {
	if opt.IncludeGBDT {
		return append(append([]vfps.ModelName{}, gridModels...), vfps.ModelGBDT)
	}
	return gridModels
}

// Grid runs the full Table IV + Table V sweep: for every dataset, select
// with every method, then train every downstream model on the selection.
// With Repeats > 1 the sweep runs that many times under shifted seeds and
// reports per-cell means, matching the paper's five-run averaging.
func Grid(ctx context.Context, opt Options) (*GridResult, error) {
	opt = opt.withDefaults()
	if opt.Repeats > 1 {
		return gridAveraged(ctx, opt)
	}
	return gridOnce(ctx, opt)
}

// gridAveraged runs gridOnce Repeats times and averages every cell.
func gridAveraged(ctx context.Context, opt Options) (*GridResult, error) {
	repeats := opt.Repeats
	single := opt
	single.Repeats = 1
	single.Out = io.Discard
	var acc *GridResult
	for r := 0; r < repeats; r++ {
		run := single
		run.Seed = opt.Seed + int64(r)*1000
		res, err := gridOnce(ctx, run)
		if err != nil {
			return nil, fmt.Errorf("repeat %d: %w", r, err)
		}
		if acc == nil {
			acc = res
			continue
		}
		for model, methods := range res.Accuracy {
			for m, datasets := range methods {
				for ds, v := range datasets {
					acc.Accuracy[model][m][ds] += v
					acc.Seconds[model][m][ds] += res.Seconds[model][m][ds]
				}
			}
		}
	}
	inv := 1 / float64(repeats)
	for _, methods := range acc.Accuracy {
		for _, datasets := range methods {
			for ds := range datasets {
				datasets[ds] *= inv
			}
		}
	}
	for _, methods := range acc.Seconds {
		for _, datasets := range methods {
			for ds := range datasets {
				datasets[ds] *= inv
			}
		}
	}
	acc.AccTable = gridTable(fmt.Sprintf("Table IV: test accuracy per downstream task (mean of %d runs)", repeats), opt, acc.Accuracy, fmtAcc)
	acc.TimeTable = gridTable(fmt.Sprintf("Table V: end-to-end running time (projected seconds, mean of %d runs)", repeats), opt, acc.Seconds, fmtSeconds)
	acc.AccTable.Fprint(opt.Out)
	acc.TimeTable.Fprint(opt.Out)
	return acc, nil
}

func gridOnce(ctx context.Context, opt Options) (*GridResult, error) {
	models := modelsFor(opt)
	res := &GridResult{
		Accuracy: map[string]map[string]map[string]float64{},
		Seconds:  map[string]map[string]map[string]float64{},
	}
	for _, model := range models {
		res.Accuracy[string(model)] = map[string]map[string]float64{}
		res.Seconds[string(model)] = map[string]map[string]float64{}
		for _, m := range gridMethods {
			res.Accuracy[string(model)][m] = map[string]float64{}
			res.Seconds[string(model)][m] = map[string]float64{}
		}
	}
	for _, ds := range opt.Datasets {
		run, err := runSelections(ctx, ds, opt)
		if err != nil {
			return nil, err
		}
		for _, model := range models {
			for _, m := range gridMethods {
				ev, err := run.cons.Evaluate(model, run.parties(m), opt.evalOpts())
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", ds, model, m, err)
				}
				res.Accuracy[string(model)][m][ds] = ev.Accuracy
				res.Seconds[string(model)][m][ds] = run.selectionSeconds(m) + ev.ProjectedSeconds
			}
		}
	}
	res.AccTable = gridTable("Table IV: test accuracy per downstream task", opt, res.Accuracy, fmtAcc)
	res.TimeTable = gridTable("Table V: end-to-end running time (projected seconds)", opt, res.Seconds, fmtSeconds)
	res.AccTable.Fprint(opt.Out)
	res.TimeTable.Fprint(opt.Out)
	return res, nil
}

func gridTable(title string, opt Options, data map[string]map[string]map[string]float64, fmtv func(float64) string) *Table {
	t := &Table{Title: title, Header: append([]string{"Task", "Method"}, opt.Datasets...)}
	for _, model := range modelsFor(opt) {
		for _, m := range gridMethods {
			row := []string{string(model), gridLabel(m)}
			for _, ds := range opt.Datasets {
				row = append(row, fmtv(data[string(model)][m][ds]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Table4 regenerates the accuracy grid only.
func Table4(ctx context.Context, opt Options) (*GridResult, error) { return Grid(ctx, opt) }

// Table5 regenerates the time grid only (shares the Grid sweep).
func Table5(ctx context.Context, opt Options) (*GridResult, error) { return Grid(ctx, opt) }

// Table1Row is one line of the motivating Table I.
type Table1Row struct {
	Method        string
	Parties       int
	SelectionSec  float64
	TrainingSec   float64
	TotalSec      float64
	TestAccuracy  float64
	WallSelection float64 // measured seconds of the scaled-down local run
}

// Table1Result reproduces Table I: LR on the SUSY-geometry dataset with
// ALL vs SHAPLEY vs VF-MINE vs VFPS-SM.
type Table1Result struct {
	Rows  []Table1Row
	Table *Table
}

// Table1 regenerates the motivating comparison.
func Table1(ctx context.Context, opt Options) (*Table1Result, error) {
	opt = opt.withDefaults()
	run, err := runSelections(ctx, "SUSY", opt)
	if err != nil {
		return nil, err
	}
	methods := []string{"ALL", string(vfps.MethodShapley), string(vfps.MethodVFMine), string(vfps.MethodVFPS)}
	res := &Table1Result{Table: &Table{
		Title:  "Table I: LR on SUSY — participant selection pays for itself",
		Header: []string{"Method", "Party Count", "Selection (s)", "Training (s)", "Total (s)", "Test Accuracy"},
	}}
	for _, m := range methods {
		parties := run.parties(m)
		ev, err := run.cons.Evaluate(vfps.ModelLR, parties, opt.evalOpts())
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Method:       gridLabel(m),
			Parties:      len(parties),
			SelectionSec: run.selectionSeconds(m),
			TrainingSec:  ev.ProjectedSeconds,
			TestAccuracy: ev.Accuracy,
		}
		if m != "ALL" {
			row.WallSelection = run.selections[vfps.Method(m)].WallTime.Seconds()
		}
		row.TotalSec = row.SelectionSec + row.TrainingSec
		res.Rows = append(res.Rows, row)
		res.Table.Rows = append(res.Table.Rows, []string{
			row.Method, fmt.Sprintf("%d", row.Parties),
			fmtSeconds(row.SelectionSec), fmtSeconds(row.TrainingSec),
			fmtSeconds(row.TotalSec), fmtAcc(row.TestAccuracy),
		})
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}
