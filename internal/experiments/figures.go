package experiments

import (
	"context"
	"fmt"

	"vfps"
)

// Fig4Result reports selection time per method per dataset (Fig. 4),
// including the VFPS-SM-BASE ablation. RANDOM and ALL select instantly.
type Fig4Result struct {
	// Seconds[method][dataset] is the projected selection time.
	Seconds map[string]map[string]float64
	Table   *Table
}

// Fig4 regenerates the selection-time comparison.
func Fig4(ctx context.Context, opt Options) (*Fig4Result, error) {
	opt = opt.withDefaults()
	methods := []vfps.Method{vfps.MethodShapley, vfps.MethodVFMine, vfps.MethodVFPSBase, vfps.MethodVFPS}
	res := &Fig4Result{Seconds: map[string]map[string]float64{}}
	for _, m := range methods {
		res.Seconds[methodLabel(m)] = map[string]float64{}
	}
	for _, ds := range opt.Datasets {
		cons, _, err := buildConsortium(ctx, ds, opt, opt.Parties, 0)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			sel, err := cons.SelectWith(ctx, m, opt.SelectCount, opt.selectOpts())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ds, m, err)
			}
			res.Seconds[methodLabel(m)][ds] = sel.ProjectedSeconds
		}
	}
	res.Table = &Table{
		Title:  "Fig. 4: selection time (projected seconds)",
		Header: append([]string{"Method"}, opt.Datasets...),
	}
	for _, m := range methods {
		row := []string{methodLabel(m)}
		for _, ds := range opt.Datasets {
			row = append(row, fmtSeconds(res.Seconds[methodLabel(m)][ds]))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// Fig5Result reports MLP training time per method per dataset (Fig. 5).
type Fig5Result struct {
	// Seconds[method][dataset] is the projected MLP training time on the
	// method's selected sub-consortium.
	Seconds map[string]map[string]float64
	Table   *Table
}

// Fig5 regenerates the MLP training-time comparison.
func Fig5(ctx context.Context, opt Options) (*Fig5Result, error) {
	opt = opt.withDefaults()
	res := &Fig5Result{Seconds: map[string]map[string]float64{}}
	for _, m := range gridMethods {
		res.Seconds[gridLabel(m)] = map[string]float64{}
	}
	for _, ds := range opt.Datasets {
		run, err := runSelections(ctx, ds, opt)
		if err != nil {
			return nil, err
		}
		for _, m := range gridMethods {
			ev, err := run.cons.Evaluate(vfps.ModelMLP, run.parties(m), opt.evalOpts())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ds, m, err)
			}
			res.Seconds[gridLabel(m)][ds] = ev.ProjectedSeconds
		}
	}
	res.Table = &Table{
		Title:  "Fig. 5: MLP training time (projected seconds)",
		Header: append([]string{"Method"}, opt.Datasets...),
	}
	for _, m := range gridMethods {
		row := []string{gridLabel(m)}
		for _, ds := range opt.Datasets {
			row = append(row, fmtSeconds(res.Seconds[gridLabel(m)][ds]))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// Fig6Result reports the diversity study (Fig. 6): KNN accuracy as exact
// duplicate participants are injected into the consortium.
type Fig6Result struct {
	// Accuracy[dataset][method][dups] for dups in Dups.
	Accuracy map[string]map[string][]float64
	Dups     []int
	Table    *Table
}

// Fig6 regenerates the duplicate-participant study on the Fig. 6 datasets.
func Fig6(ctx context.Context, opt Options) (*Fig6Result, error) {
	opt = opt.withDefaults()
	datasets := opt.Datasets
	if len(datasets) == 10 {
		datasets = []string{"Phishing", "Web"} // the paper's Fig. 6 pair
	}
	methods := []vfps.Method{vfps.MethodShapley, vfps.MethodVFMine, vfps.MethodVFPS}
	dups := []int{0, 1, 2, 3, 4}
	res := &Fig6Result{Accuracy: map[string]map[string][]float64{}, Dups: dups}
	res.Table = &Table{
		Title:  "Fig. 6: KNN accuracy vs injected duplicate participants",
		Header: []string{"Dataset", "Method", "+0", "+1", "+2", "+3", "+4"},
	}
	for _, ds := range datasets {
		res.Accuracy[ds] = map[string][]float64{}
		for _, m := range methods {
			res.Accuracy[ds][methodLabel(m)] = make([]float64, len(dups))
		}
		for di, dup := range dups {
			cons, _, err := buildConsortium(ctx, ds, opt, opt.Parties, dup)
			if err != nil {
				return nil, err
			}
			for _, m := range methods {
				sel, err := cons.SelectWith(ctx, m, opt.SelectCount, opt.selectOpts())
				if err != nil {
					return nil, fmt.Errorf("%s/%s/+%d: %w", ds, m, dup, err)
				}
				ev, err := cons.Evaluate(vfps.ModelKNN, sel.Selected, opt.evalOpts())
				if err != nil {
					return nil, err
				}
				res.Accuracy[ds][methodLabel(m)][di] = ev.Accuracy
			}
		}
		for _, m := range methods {
			row := []string{ds, methodLabel(m)}
			for _, a := range res.Accuracy[ds][methodLabel(m)] {
				row = append(row, fmtAcc(a))
			}
			res.Table.Rows = append(res.Table.Rows, row)
		}
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// Fig7Result reports the scalability study (Fig. 7): selection time versus
// the number of participants.
type Fig7Result struct {
	Parties []int
	// Seconds[dataset][method][i] is the projected selection time at
	// Parties[i].
	Seconds map[string]map[string][]float64
	Table   *Table
}

// Fig7 regenerates the scalability sweep. SHAPLEY's exact enumeration is
// intentionally kept — its exponential blow-up is the figure's point — so
// the workload is clamped to stay tractable at 20 participants.
func Fig7(ctx context.Context, opt Options) (*Fig7Result, error) {
	opt = opt.withDefaults()
	if opt.Rows > 150 {
		opt.Rows = 150
	}
	if opt.Queries > 8 {
		opt.Queries = 8
	}
	if opt.K > 5 {
		opt.K = 5
	}
	datasets := opt.Datasets
	if len(datasets) == 10 {
		datasets = []string{"Phishing", "Web"}
	}
	sweep := []int{4, 8, 12, 16, 20}
	methods := []vfps.Method{vfps.MethodShapley, vfps.MethodVFMine, vfps.MethodVFPS}
	res := &Fig7Result{Parties: sweep, Seconds: map[string]map[string][]float64{}}
	res.Table = &Table{
		Title:  "Fig. 7: selection time vs consortium size (projected seconds)",
		Header: []string{"Dataset", "Method", "P=4", "P=8", "P=12", "P=16", "P=20"},
	}
	for _, ds := range datasets {
		res.Seconds[ds] = map[string][]float64{}
		for _, m := range methods {
			res.Seconds[ds][methodLabel(m)] = make([]float64, len(sweep))
		}
		for pi, p := range sweep {
			localOpt := opt
			localOpt.SelectCount = p / 2
			cons, _, err := buildConsortium(ctx, ds, localOpt, p, 0)
			if err != nil {
				return nil, err
			}
			for _, m := range methods {
				sel, err := cons.SelectWith(ctx, m, localOpt.SelectCount, localOpt.selectOpts())
				if err != nil {
					return nil, fmt.Errorf("%s/%s/P=%d: %w", ds, m, p, err)
				}
				res.Seconds[ds][methodLabel(m)][pi] = sel.ProjectedSeconds
			}
		}
		for _, m := range methods {
			row := []string{ds, methodLabel(m)}
			for _, s := range res.Seconds[ds][methodLabel(m)] {
				row = append(row, fmtSeconds(s))
			}
			res.Table.Rows = append(res.Table.Rows, row)
		}
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// Fig8Result reports the impact of the proxy-KNN k (Fig. 8).
type Fig8Result struct {
	Ks []int
	// Accuracy[dataset][i] is the downstream KNN accuracy when selecting
	// with k = Ks[i].
	Accuracy map[string][]float64
	Table    *Table
}

// Fig8 regenerates the k sweep on the Fig. 8 datasets.
func Fig8(ctx context.Context, opt Options) (*Fig8Result, error) {
	opt = opt.withDefaults()
	datasets := opt.Datasets
	if len(datasets) == 10 {
		datasets = []string{"Phishing", "Web"}
	}
	ks := []int{1, 5, 10, 20, 50}
	res := &Fig8Result{Ks: ks, Accuracy: map[string][]float64{}}
	res.Table = &Table{
		Title:  "Fig. 8: impact of k on downstream accuracy (VFPS-SM selection)",
		Header: []string{"Dataset", "k=1", "k=5", "k=10", "k=20", "k=50"},
	}
	for _, ds := range datasets {
		cons, _, err := buildConsortium(ctx, ds, opt, opt.Parties, 0)
		if err != nil {
			return nil, err
		}
		accs := make([]float64, len(ks))
		for ki, k := range ks {
			if k >= cons.N()/2 {
				k = cons.N() / 2
			}
			so := opt.selectOpts()
			so.K = k
			sel, err := cons.Select(ctx, opt.SelectCount, so)
			if err != nil {
				return nil, fmt.Errorf("%s/k=%d: %w", ds, k, err)
			}
			eo := opt.evalOpts()
			ev, err := cons.Evaluate(vfps.ModelKNN, sel.Selected, eo)
			if err != nil {
				return nil, err
			}
			accs[ki] = ev.Accuracy
		}
		res.Accuracy[ds] = accs
		row := []string{ds}
		for _, a := range accs {
			row = append(row, fmtAcc(a))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}

// Fig9Result reports the candidate-pruning ablation (Fig. 9): average number
// of instances encrypted and communicated per query, BASE vs Fagin.
type Fig9Result struct {
	// Candidates[variant][dataset], variant ∈ {"VFPS-SM-BASE", "VFPS-SM"}.
	Candidates map[string]map[string]float64
	Table      *Table
}

// Fig9 regenerates the candidate-count ablation.
func Fig9(ctx context.Context, opt Options) (*Fig9Result, error) {
	opt = opt.withDefaults()
	res := &Fig9Result{Candidates: map[string]map[string]float64{
		"VFPS-SM-BASE": {},
		"VFPS-SM":      {},
	}}
	for _, ds := range opt.Datasets {
		cons, _, err := buildConsortium(ctx, ds, opt, opt.Parties, 0)
		if err != nil {
			return nil, err
		}
		base, err := cons.Select(ctx, opt.SelectCount, func() vfps.SelectOptions {
			o := opt.selectOpts()
			o.Base = true
			return o
		}())
		if err != nil {
			return nil, err
		}
		fagin, err := cons.Select(ctx, opt.SelectCount, opt.selectOpts())
		if err != nil {
			return nil, err
		}
		res.Candidates["VFPS-SM-BASE"][ds] = base.AvgCandidates
		res.Candidates["VFPS-SM"][ds] = fagin.AvgCandidates
	}
	res.Table = &Table{
		Title:  "Fig. 9: average encrypted/communicated instances per query",
		Header: append([]string{"Variant"}, opt.Datasets...),
	}
	for _, v := range []string{"VFPS-SM-BASE", "VFPS-SM"} {
		row := []string{v}
		for _, ds := range opt.Datasets {
			row = append(row, fmt.Sprintf("%.1f", res.Candidates[v][ds]))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	res.Table.Fprint(opt.Out)
	return res, nil
}
