package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestPayloadBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    48,
		Queries: 3,
		K:       3,
		Parties: 3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken key width and round count: the real harness runs 512-bit
	// keys over 4 monitoring rounds.
	res, err := payloadAt(context.Background(), opt, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 6 {
		t.Fatalf("want 6 arms, got %d", len(res.Arms))
	}
	byName := map[string]*PayloadArm{}
	for i := range res.Arms {
		a := &res.Arms[i]
		byName[a.Name] = a
		if !a.SelectedMatch {
			t.Errorf("%s: selected a different set than the static baseline", a.Name)
		}
		if len(a.RoundBytes) != res.Rounds || len(a.RoundWire) != res.Rounds {
			t.Fatalf("%s: want %d round byte counts, got %d/%d",
				a.Name, res.Rounds, len(a.RoundBytes), len(a.RoundWire))
		}
		for r, b := range a.RoundBytes {
			if b <= 0 {
				t.Errorf("%s round %d: no payload bytes recorded", a.Name, r+1)
			}
		}
	}
	for _, name := range []string{"static", "adaptive", "chunked", "delta", "full", "mixed-codec"} {
		if byName[name] == nil {
			t.Fatalf("missing arm %q", name)
		}
	}
	// Delta arms settle into a cheaper steady state than their cold round
	// and record cache hits; knob-off arms never touch the cache.
	last := res.Rounds - 1
	for _, name := range []string{"delta", "full", "mixed-codec"} {
		a := byName[name]
		if a.RoundBytes[last] >= a.RoundBytes[0] {
			t.Errorf("%s: steady-state round sent %d B, cold round %d B — delta cache not engaged",
				name, a.RoundBytes[last], a.RoundBytes[0])
		}
		if a.CacheHits == 0 {
			t.Errorf("%s: no delta-cache hits recorded", name)
		}
	}
	for _, name := range []string{"static", "adaptive", "chunked"} {
		a := byName[name]
		if a.CacheHits != 0 || a.CacheMisses != 0 {
			t.Errorf("%s: cache counters %d/%d on a knob-off arm", name, a.CacheHits, a.CacheMisses)
		}
	}
	if res.Reduction <= 1 {
		t.Errorf("steady-state reduction %.2fx, want > 1x", res.Reduction)
	}
	if res.TotalReduction <= 1 {
		t.Errorf("all-rounds reduction %.2fx, want > 1x", res.TotalReduction)
	}
	if !strings.Contains(buf.String(), "Ciphertext payload") {
		t.Fatalf("table not printed:\n%s", buf.String())
	}
}
