package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"runtime"
	"time"

	"vfps"
	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/paillier"
	"vfps/internal/par"
)

// opCounts drops the wire-byte fields from a snapshot. Byte counters charge
// bytes as actually encoded, and Paillier ciphertext serialisation length
// varies with the encryption randomizer — independent of parallelism — so
// determinism comparisons cover the operation counts only.
func opCounts(r costmodel.Raw) costmodel.Raw {
	r.BytesSent, r.FramingBytes = 0, 0
	return r
}

// ParallelVec reports the Paillier vector-kernel microbenchmark: the same
// N-element encryption run serially, with the worker pool, and with the
// worker pool fed by a pre-filled randomizer pool (r^n precomputed off the
// timed path, leaving two modular multiplications per item).
type ParallelVec struct {
	N    int
	Bits int
	// Encryption passes.
	EncryptSerialSeconds   float64
	EncryptParallelSeconds float64
	EncryptPooledSeconds   float64
	EncryptParallelSpeedup float64
	EncryptPooledSpeedup   float64
	// Decryption passes.
	DecryptSerialSeconds   float64
	DecryptParallelSeconds float64
	DecryptParallelSpeedup float64
}

// ParallelE2E reports one serial-vs-parallel end-to-end selection pair under
// real Paillier. SelectedMatch and CountsMatch assert the pipeline's
// determinism contract: identical selected sets and identical protocol
// operation counts at every parallelism setting.
type ParallelE2E struct {
	Variant         string
	SerialSeconds   float64
	ParallelSeconds float64
	Speedup         float64
	Selected        []int
	SelectedMatch   bool
	CountsMatch     bool
}

// ParallelResult is the structured output of the parallel-pipeline benchmark.
type ParallelResult struct {
	GOMAXPROCS  int
	Parallelism int // resolved default degree (VFPS_PARALLELISM or GOMAXPROCS)
	Rows        int
	Queries     int
	Parties     int
	KeyBits     int
	Vec         ParallelVec
	EndToEnd    []ParallelE2E
	Table       *Table
}

// Parallel benchmarks the parallel HE pipeline against its serial baseline:
// the EncryptVec/DecryptVec Paillier kernels at N=1000 items under 1024-bit
// keys, and full BASE and SM (Fagin) selections wall-clocked at
// Parallelism=1 versus the default degree. Speedups depend on GOMAXPROCS;
// the determinism booleans must hold everywhere.
func Parallel(ctx context.Context, opt Options) (*ParallelResult, error) {
	return parallelAt(ctx, opt, 1000, 1024, 512)
}

// parallelAt is Parallel with the microbenchmark size and key widths
// injectable so unit tests can shrink them.
func parallelAt(ctx context.Context, opt Options, vecN, vecBits, e2eBits int) (*ParallelResult, error) {
	opt = opt.withDefaults()
	res := &ParallelResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Degree(),
		Parties:     opt.Parties,
		KeyBits:     e2eBits,
	}
	// End-to-end selections run real Paillier, so keep the workload modest
	// regardless of the sweep-scale defaults used by the simulated schemes.
	res.Rows = opt.Rows
	if res.Rows > 200 {
		res.Rows = 200
	}
	res.Queries = opt.Queries
	if res.Queries > 8 {
		res.Queries = 8
	}

	if err := parallelVec(ctx, &res.Vec, vecN, vecBits); err != nil {
		return nil, err
	}
	for _, variant := range []string{"base", "fagin"} {
		e2e, err := parallelE2E(ctx, opt, res, variant)
		if err != nil {
			return nil, err
		}
		res.EndToEnd = append(res.EndToEnd, *e2e)
	}

	res.Table = parallelTable(res)
	res.Table.Fprint(opt.Out)
	return res, nil
}

// parallelVec times the Paillier vector kernels. The pooled pass pre-fills
// the randomizer pool before timing starts: precomputation is concurrent
// background work in deployments, so only the consume-side cost is on the
// clock.
func parallelVec(ctx context.Context, v *ParallelVec, n, bits int) error {
	v.N, v.Bits = n, bits
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return err
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%97) / 97
	}

	serial := he.NewPaillier(&key.PublicKey, nil)
	serial.SetParallelism(1)
	start := time.Now()
	cs, err := serial.EncryptVec(ctx, vals)
	if err != nil {
		return err
	}
	v.EncryptSerialSeconds = time.Since(start).Seconds()

	parl := he.NewPaillier(&key.PublicKey, nil)
	parl.SetParallelism(0)
	start = time.Now()
	if _, err := parl.EncryptVec(ctx, vals); err != nil {
		return err
	}
	v.EncryptParallelSeconds = time.Since(start).Seconds()

	pooled := he.NewPaillier(&key.PublicKey, nil)
	pooled.SetParallelism(0)
	pooled.StartRandomizerPool(n, 1)
	if _, err := pooled.PrefillRandomizers(n); err != nil {
		pooled.Close()
		return err
	}
	start = time.Now()
	if _, err := pooled.EncryptVec(ctx, vals); err != nil {
		pooled.Close()
		return err
	}
	v.EncryptPooledSeconds = time.Since(start).Seconds()
	// Stop the background filler before the decryption passes: on a small
	// machine its refill modexps would contend with the timed loops.
	pooled.Close()

	dec := he.NewPaillier(&key.PublicKey, key)
	dec.SetParallelism(1)
	start = time.Now()
	if _, err := dec.DecryptVec(ctx, cs); err != nil {
		return err
	}
	v.DecryptSerialSeconds = time.Since(start).Seconds()
	dec.SetParallelism(0)
	start = time.Now()
	if _, err := dec.DecryptVec(ctx, cs); err != nil {
		return err
	}
	v.DecryptParallelSeconds = time.Since(start).Seconds()

	v.EncryptParallelSpeedup = speedup(v.EncryptSerialSeconds, v.EncryptParallelSeconds)
	v.EncryptPooledSpeedup = speedup(v.EncryptSerialSeconds, v.EncryptPooledSeconds)
	v.DecryptParallelSpeedup = speedup(v.DecryptSerialSeconds, v.DecryptParallelSeconds)
	return nil
}

// parallelE2E wall-clocks one selection variant on a serial consortium
// (Parallelism=1, no randomizer pool) and a default-degree consortium, then
// checks the two runs selected identical participants with identical
// operation counts.
func parallelE2E(ctx context.Context, opt Options, res *ParallelResult, variant string) (*ParallelE2E, error) {
	run := func(parallelism int) (*vfps.Selection, error) {
		d, err := vfps.GenerateDataset("Bank", res.Rows)
		if err != nil {
			return nil, err
		}
		pt, err := vfps.VerticalSplit(d, res.Parties, opt.Seed+101)
		if err != nil {
			return nil, err
		}
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition:   pt,
			Labels:      d.Y,
			Classes:     d.Classes,
			Scheme:      "paillier",
			KeyBits:     res.KeyBits,
			ShuffleSeed: opt.Seed + 303,
			Parallelism: parallelism,
		})
		if err != nil {
			return nil, err
		}
		defer cons.Close()
		return cons.Select(ctx, opt.SelectCount, vfps.SelectOptions{
			K:          opt.K,
			NumQueries: res.Queries,
			Seed:       opt.Seed,
			TopK:       variant,
		})
	}
	serial, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("%s serial: %w", variant, err)
	}
	parl, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("%s parallel: %w", variant, err)
	}
	e2e := &ParallelE2E{
		Variant:         variant,
		SerialSeconds:   serial.WallTime.Seconds(),
		ParallelSeconds: parl.WallTime.Seconds(),
		Selected:        parl.Selected,
		SelectedMatch:   equalInts(serial.Selected, parl.Selected),
		CountsMatch:     opCounts(serial.Counts) == opCounts(parl.Counts),
	}
	e2e.Speedup = speedup(e2e.SerialSeconds, e2e.ParallelSeconds)
	return e2e, nil
}

func parallelTable(r *ParallelResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Parallel HE pipeline (GOMAXPROCS=%d, degree=%d)",
			r.GOMAXPROCS, r.Parallelism),
		Header: []string{"workload", "serial s", "parallel s", "speedup"},
	}
	v := r.Vec
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("EncryptVec n=%d b=%d", v.N, v.Bits),
			fmtSeconds(v.EncryptSerialSeconds), fmtSeconds(v.EncryptParallelSeconds),
			fmt.Sprintf("%.2fx", v.EncryptParallelSpeedup)},
		[]string{"EncryptVec (pooled r^n)",
			fmtSeconds(v.EncryptSerialSeconds), fmtSeconds(v.EncryptPooledSeconds),
			fmt.Sprintf("%.2fx", v.EncryptPooledSpeedup)},
		[]string{fmt.Sprintf("DecryptVec n=%d b=%d", v.N, v.Bits),
			fmtSeconds(v.DecryptSerialSeconds), fmtSeconds(v.DecryptParallelSeconds),
			fmt.Sprintf("%.2fx", v.DecryptParallelSpeedup)},
	)
	for _, e := range r.EndToEnd {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("selection %s n=%d q=%d (match=%v counts=%v)",
				e.Variant, r.Rows, r.Queries, e.SelectedMatch, e.CountsMatch),
			fmtSeconds(e.SerialSeconds), fmtSeconds(e.ParallelSeconds),
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}
	return t
}

func speedup(serial, parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return serial / parallel
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
