package experiments

import (
	"context"
	"fmt"
	"runtime"

	"vfps"
	"vfps/internal/core"
	"vfps/internal/par"
	"vfps/internal/vfl"
	"vfps/internal/wire"
)

// PayloadArm is one knob configuration of the ciphertext-payload benchmark,
// run over several monitoring rounds of the identical query set (the
// recurring-selection deployment the delta cache targets).
type PayloadArm struct {
	Name       string
	Adaptive   bool
	ChunkBytes int
	Delta      bool
	// MixedCodec drops one gob-only party into the consortium, forcing the
	// aggregator to negotiate legacy whole-blob framing on that link.
	MixedCodec bool
	// RoundBytes is the ciphertext-payload byte count of each round;
	// RoundWire adds framing. Round 0 is cold, later rounds are the
	// monitoring steady state.
	RoundBytes []int64
	RoundWire  []int64
	Selected   []int
	// SelectedMatch asserts the determinism contract: this arm selected
	// exactly the static-pack baseline's participants (rounds within an arm
	// are checked for self-consistency during the run).
	SelectedMatch bool
	// CacheHits/CacheMisses are the delta-cache counters of the final
	// round, summed across receiving roles.
	CacheHits   int64
	CacheMisses int64
	Seconds     float64
}

// PayloadResult is the structured output of the payload benchmark.
type PayloadResult struct {
	GOMAXPROCS  int
	Parallelism int
	Rows        int
	Queries     int
	Parties     int
	KeyBits     int
	Rounds      int
	Arms        []PayloadArm
	// Reduction is the headline gate: the steady-state payload shrink of
	// the fully optimized arm (adaptive+chunked+delta) over static-pack —
	// baseline last-round ciphertext bytes divided by optimized last-round
	// ciphertext bytes. The first rounds warm the delta caches (and, under
	// adaptive packing, renegotiate the slot geometry, invalidating the
	// cold-round cache keys); the recurring monitoring rounds afterwards
	// are the contract.
	Reduction float64
	// TotalReduction is the same ratio summed over all rounds, warm-up
	// included.
	TotalReduction float64
	Table          *Table
}

// payloadKnobs selects which payload optimizations an arm enables on top of
// static slot packing.
type payloadKnobs struct {
	adaptive bool
	chunk    int
	delta    bool
	mixed    bool
}

// Payload benchmarks the ciphertext-payload optimizations — adaptive pack
// factor, streamed chunk decryption, cross-round delta encoding — against
// the static-pack baseline on repeated Fagin selections. Every arm must
// select the identical participant set; the fully optimized arm must shrink
// steady-state ciphertext bytes by the factor recorded in Reduction.
func Payload(ctx context.Context, opt Options) (*PayloadResult, error) {
	return payloadAt(ctx, opt, 512, 4)
}

// payloadAt is Payload with the key width and round count injectable so
// unit tests can shrink them.
func payloadAt(ctx context.Context, opt Options, e2eBits, rounds int) (*PayloadResult, error) {
	opt = opt.withDefaults()
	res := &PayloadResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Degree(),
		Parties:     opt.Parties,
		KeyBits:     e2eBits,
		Rounds:      rounds,
	}
	res.Rows = opt.Rows
	if res.Rows > 160 {
		res.Rows = 160
	}
	res.Queries = opt.Queries
	if res.Queries > 6 {
		res.Queries = 6
	}

	d, err := vfps.GenerateDataset("Bank", res.Rows)
	if err != nil {
		return nil, err
	}
	pt, err := vfps.VerticalSplit(d, res.Parties, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	queries := core.SampleQueries(res.Rows, res.Queries, opt.Seed)

	arms := []struct {
		name string
		kn   payloadKnobs
	}{
		{"static", payloadKnobs{}},
		{"adaptive", payloadKnobs{adaptive: true}},
		{"chunked", payloadKnobs{chunk: 2048}},
		{"delta", payloadKnobs{delta: true}},
		{"full", payloadKnobs{adaptive: true, chunk: 2048, delta: true}},
		{"mixed-codec", payloadKnobs{adaptive: true, chunk: 2048, delta: true, mixed: true}},
	}
	for _, a := range arms {
		arm, err := payloadArm(ctx, opt, res, a.name, a.kn, pt, queries, rounds)
		if err != nil {
			return nil, err
		}
		res.Arms = append(res.Arms, *arm)
	}

	base := &res.Arms[0]
	base.SelectedMatch = true
	for i := range res.Arms[1:] {
		arm := &res.Arms[i+1]
		arm.SelectedMatch = equalInts(base.Selected, arm.Selected)
		if arm.Name == "full" {
			last := rounds - 1
			res.Reduction = speedup(float64(base.RoundBytes[last]), float64(arm.RoundBytes[last]))
			res.TotalReduction = speedup(float64(sumInt64(base.RoundBytes)), float64(sumInt64(arm.RoundBytes)))
		}
	}

	res.Table = payloadTable(res)
	res.Table.Fprint(opt.Out)
	return res, nil
}

// payloadArm runs `rounds` identical Fagin selections on a fresh consortium
// with one knob configuration, recording per-round byte counts. Selections
// must be identical across rounds — the caches may only change how bytes
// move, never what is computed.
func payloadArm(ctx context.Context, opt Options, res *PayloadResult, name string, kn payloadKnobs, pt *vfps.Partition, queries []int, rounds int) (*PayloadArm, error) {
	cl, err := vfl.NewLocalCluster(ctx, vfl.ClusterConfig{
		Partition:    pt,
		Scheme:       "paillier",
		KeyBits:      res.KeyBits,
		ShuffleSeed:  opt.Seed + 303,
		Pack:         true,
		PackAdaptive: kn.adaptive,
		ChunkBytes:   kn.chunk,
		DeltaCache:   kn.delta,
		Wire:         "binary",
		Instance:     "payload/" + name,
	})
	if err != nil {
		return nil, fmt.Errorf("payload %s: %w", name, err)
	}
	defer cl.Close()
	if kn.mixed {
		cl.Parties[0].SetCodec(wire.Gob()) // the legacy node
	}

	arm := &PayloadArm{
		Name:       name,
		Adaptive:   kn.adaptive,
		ChunkBytes: kn.chunk,
		Delta:      kn.delta,
		MixedCodec: kn.mixed,
	}
	for r := 0; r < rounds; r++ {
		sel, err := core.Select(ctx, cl.Leader, opt.SelectCount, core.Config{
			K:       opt.K,
			Queries: queries,
			Variant: vfl.VariantFagin,
			Seed:    opt.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("payload %s round %d: %w", name, r+1, err)
		}
		if r == 0 {
			arm.Selected = sel.Selected
		} else if !equalInts(arm.Selected, sel.Selected) {
			return nil, fmt.Errorf("payload %s: round %d selected %v but round 1 selected %v",
				name, r+1, sel.Selected, arm.Selected)
		}
		arm.RoundBytes = append(arm.RoundBytes, sel.Counts.BytesSent)
		arm.RoundWire = append(arm.RoundWire, sel.Counts.WireBytes())
		arm.CacheHits = sel.Counts.CacheHits
		arm.CacheMisses = sel.Counts.CacheMisses
		arm.Seconds += sel.WallTime.Seconds()
	}
	return arm, nil
}

func sumInt64(vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func payloadTable(r *PayloadResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Ciphertext payload: adaptive pack + chunked streaming + delta cache (n=%d q=%d p=%d b=%d-bit keys, %d rounds)",
			r.Rows, r.Queries, r.Parties, r.KeyBits, r.Rounds),
		Header: []string{"arm", "round-1 payload", "last-round payload", "total payload", "cache h/m", "match"},
	}
	last := r.Rounds - 1
	for _, a := range r.Arms {
		t.Rows = append(t.Rows, []string{
			a.Name,
			fmt.Sprintf("%d B", a.RoundBytes[0]),
			fmt.Sprintf("%d B", a.RoundBytes[last]),
			fmt.Sprintf("%d B", sumInt64(a.RoundBytes)),
			fmt.Sprintf("%d/%d", a.CacheHits, a.CacheMisses),
			fmt.Sprintf("%v", a.SelectedMatch),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"steady-state reduction (full vs static)", "", "", fmt.Sprintf("%.2fx", r.Reduction), "", ""},
		[]string{"all-rounds reduction (full vs static)", "", "", fmt.Sprintf("%.2fx", r.TotalReduction), "", ""},
	)
	return t
}
