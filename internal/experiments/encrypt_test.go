package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestEncryptBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    60,
		Queries: 4,
		K:       3,
		Parties: 3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken kernel sizes: the real harness uses N=256 at 1024-bit keys.
	res, err := encryptAt(context.Background(), opt, 24, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Micro
	for name, s := range map[string]float64{
		"inline":            m.InlineSeconds,
		"windowed":          m.WindowedSeconds,
		"crt":               m.CRTSeconds,
		"crt+windowed":      m.CRTWindowedSeconds,
		"pooled":            m.PooledSeconds,
		"mont-windowed-off": m.MontWindowedOffSeconds,
		"mont-windowed-on":  m.MontWindowedOnSeconds,
		"mont-sum-off":      m.MontSumOffSeconds,
		"mont-sum-on":       m.MontSumOnSeconds,
		"mont-decrypt-off":  m.MontDecryptOffSeconds,
		"mont-decrypt-on":   m.MontDecryptOnSeconds,
	} {
		if s <= 0 {
			t.Fatalf("missing %s timing: %+v", name, m)
		}
	}
	if m.WindowedSpeedup <= 0 || m.PooledSpeedup <= 0 {
		t.Fatalf("missing speedups: %+v", m)
	}
	if m.MontWindowedSpeedup <= 0 || m.MontSumSpeedup <= 0 || m.MontDecryptRatio <= 0 {
		t.Fatalf("missing mont A/B ratios: %+v", m)
	}
	// base and fagin, four modes each.
	if len(res.EndToEnd) != 8 {
		t.Fatalf("want 8 end-to-end rows, got %d", len(res.EndToEnd))
	}
	montOff := 0
	for _, e := range res.EndToEnd {
		if e.Mode == "mont-off" {
			montOff++
		}
	}
	if montOff != 2 {
		t.Fatalf("want a mont-off arm per variant, got %d", montOff)
	}
	for _, e := range res.EndToEnd {
		if !e.SelectedMatch {
			t.Fatalf("%s/%s selected a different set than classic", e.Variant, e.Mode)
		}
		if len(e.Selected) == 0 || e.Seconds <= 0 {
			t.Fatalf("%s/%s: incomplete row %+v", e.Variant, e.Mode, e)
		}
	}
	if !strings.Contains(buf.String(), "Encryption hot path") {
		t.Fatalf("table not printed:\n%s", buf.String())
	}
}
