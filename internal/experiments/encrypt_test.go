package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestEncryptBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    60,
		Queries: 4,
		K:       3,
		Parties: 3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken kernel sizes: the real harness uses N=256 at 1024-bit keys.
	res, err := encryptAt(context.Background(), opt, 24, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Micro
	for name, s := range map[string]float64{
		"inline":       m.InlineSeconds,
		"windowed":     m.WindowedSeconds,
		"crt":          m.CRTSeconds,
		"crt+windowed": m.CRTWindowedSeconds,
		"pooled":       m.PooledSeconds,
	} {
		if s <= 0 {
			t.Fatalf("missing %s timing: %+v", name, m)
		}
	}
	if m.WindowedSpeedup <= 0 || m.PooledSpeedup <= 0 {
		t.Fatalf("missing speedups: %+v", m)
	}
	// base and fagin, three modes each.
	if len(res.EndToEnd) != 6 {
		t.Fatalf("want 6 end-to-end rows, got %d", len(res.EndToEnd))
	}
	for _, e := range res.EndToEnd {
		if !e.SelectedMatch {
			t.Fatalf("%s/%s selected a different set than classic", e.Variant, e.Mode)
		}
		if len(e.Selected) == 0 || e.Seconds <= 0 {
			t.Fatalf("%s/%s: incomplete row %+v", e.Variant, e.Mode, e)
		}
	}
	if !strings.Contains(buf.String(), "Encryption hot path") {
		t.Fatalf("table not printed:\n%s", buf.String())
	}
}
