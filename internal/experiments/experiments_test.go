package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// fastOpts keeps unit-test runs quick: two small datasets, small rows.
func fastOpts() Options {
	return Options{
		Rows:      150,
		Queries:   8,
		K:         5,
		MaxEpochs: 3,
		Datasets:  []string{"Bank", "Rice"},
		Seed:      1,
	}
}

func TestTable1(t *testing.T) {
	opt := fastOpts()
	var buf bytes.Buffer
	opt.Out = &buf
	res, err := Table1(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	byMethod := map[string]Table1Row{}
	for _, r := range res.Rows {
		byMethod[r.Method] = r
	}
	if byMethod["ALL"].SelectionSec != 0 {
		t.Fatal("ALL must have zero selection time")
	}
	// The paper's headline: SHAPLEY selection dwarfs VFPS-SM selection.
	if byMethod["SHAPLEY"].SelectionSec <= byMethod["VFPS-SM"].SelectionSec {
		t.Fatalf("SHAPLEY %g should exceed VFPS-SM %g",
			byMethod["SHAPLEY"].SelectionSec, byMethod["VFPS-SM"].SelectionSec)
	}
	// Training on 2 of 4 parties must beat training on all 4.
	if byMethod["VFPS-SM"].TrainingSec >= byMethod["ALL"].TrainingSec {
		t.Fatal("selected training should be cheaper than ALL")
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("table not printed")
	}
}

func TestGridShapes(t *testing.T) {
	opt := fastOpts()
	res, err := Grid(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"KNN", "LR", "MLP"} {
		for _, m := range gridMethods {
			for _, ds := range opt.Datasets {
				acc, ok := res.Accuracy[model][m][ds]
				if !ok {
					t.Fatalf("missing accuracy %s/%s/%s", model, m, ds)
				}
				if acc < 0 || acc > 1 {
					t.Fatalf("accuracy %g out of range", acc)
				}
				if sec := res.Seconds[model][m][ds]; sec < 0 {
					t.Fatalf("negative time %g", sec)
				}
			}
		}
	}
	// 3 models × 5 methods rows.
	if len(res.AccTable.Rows) != 15 || len(res.TimeTable.Rows) != 15 {
		t.Fatalf("table shapes %d/%d", len(res.AccTable.Rows), len(res.TimeTable.Rows))
	}
}

func TestGridSelectionBeatsRandomOnAverage(t *testing.T) {
	// Averaged over datasets and models, informed selection (VFPS-SM) should
	// not lose to RANDOM; this is the paper's Table IV headline in
	// expectation.
	opt := fastOpts()
	opt.Datasets = []string{"Bank", "Rice", "Credit"}
	opt.Rows = 300
	opt.Queries = 16
	opt.MaxEpochs = 5
	res, err := Grid(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var vfpsSum, randSum float64
	n := 0
	for _, model := range []string{"KNN", "LR", "MLP"} {
		for _, ds := range opt.Datasets {
			vfpsSum += res.Accuracy[model]["vfps-sm"][ds]
			randSum += res.Accuracy[model]["random"][ds]
			n++
		}
	}
	// At this scale test sets are tiny, so allow noise; the assertion guards
	// against VFPS-SM being systematically worse than uninformed selection.
	if vfpsSum < randSum-0.03*float64(n) {
		t.Fatalf("VFPS-SM mean accuracy %.4f well below RANDOM %.4f",
			vfpsSum/float64(n), randSum/float64(n))
	}
}

func TestFig4Ordering(t *testing.T) {
	opt := fastOpts()
	res, err := Fig4(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range opt.Datasets {
		sh := res.Seconds["SHAPLEY"][ds]
		vm := res.Seconds["VFMINE"][ds]
		sm := res.Seconds["VFPS-SM"][ds]
		base := res.Seconds["VFPS-SM-BASE"][ds]
		if !(sh > vm && vm > sm) {
			t.Fatalf("%s: ordering violated: shapley %g vfmine %g vfps %g", ds, sh, vm, sm)
		}
		if base <= sm {
			t.Fatalf("%s: base %g should exceed fagin %g", ds, base, sm)
		}
	}
}

func TestFig5AllSlowest(t *testing.T) {
	opt := fastOpts()
	res, err := Fig5(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range opt.Datasets {
		all := res.Seconds["ALL"][ds]
		sm := res.Seconds["VFPS-SM"][ds]
		if sm >= all {
			t.Fatalf("%s: training on a sub-consortium (%g) should beat ALL (%g)", ds, sm, all)
		}
	}
}

func TestFig6DuplicateRobustness(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	res, err := Fig6(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Accuracy["Rice"]["VFPS-SM"]
	if len(acc) != 5 {
		t.Fatalf("expected 5 duplicate levels, got %d", len(acc))
	}
	// VFPS-SM must stay roughly flat as duplicates are injected.
	for i := 1; i < len(acc); i++ {
		if acc[0]-acc[i] > 0.08 {
			t.Fatalf("VFPS-SM accuracy degraded with duplicates: %v", acc)
		}
	}
}

func TestFig7ExponentialShapley(t *testing.T) {
	opt := fastOpts()
	// Needs a dataset with ≥ 20 features to split across 20 parties.
	opt.Datasets = []string{"Phishing"}
	res, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Seconds["Phishing"]["SHAPLEY"]
	sm := res.Seconds["Phishing"]["VFPS-SM"]
	if len(sh) != 5 {
		t.Fatalf("expected 5 sweep points")
	}
	// SHAPLEY must blow up super-linearly while VFPS-SM stays near-linear:
	// compare growth factors P=4 → P=20.
	shGrowth := sh[4] / sh[0]
	smGrowth := sm[4] / sm[0]
	if shGrowth < 50*smGrowth {
		t.Fatalf("SHAPLEY growth %.1fx should dwarf VFPS-SM growth %.1fx", shGrowth, smGrowth)
	}
}

func TestFig8Shape(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	res, err := Fig8(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	accs := res.Accuracy["Rice"]
	if len(accs) != 5 {
		t.Fatalf("expected 5 k values, got %d", len(accs))
	}
	for _, a := range accs {
		if a < 0.3 {
			t.Fatalf("implausible accuracy %g in k sweep", a)
		}
	}
}

func TestFig9Pruning(t *testing.T) {
	opt := fastOpts()
	res, err := Fig9(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range opt.Datasets {
		base := res.Candidates["VFPS-SM-BASE"][ds]
		sm := res.Candidates["VFPS-SM"][ds]
		if base != float64(opt.Rows-1) {
			t.Fatalf("%s: base candidates %g, want %d", ds, base, opt.Rows-1)
		}
		if sm >= base {
			t.Fatalf("%s: fagin candidates %g not fewer than base %g", ds, sm, base)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	opt := Options{}.withDefaults()
	if opt.Rows != 400 || opt.Parties != 4 || opt.SelectCount != 2 {
		t.Fatalf("defaults wrong: %+v", opt)
	}
	if len(opt.Datasets) != 10 {
		t.Fatalf("expected all datasets, got %v", opt.Datasets)
	}
	// K clamps to Rows/10.
	small := Options{Rows: 50}.withDefaults()
	if small.K != 5 {
		t.Fatalf("K clamp wrong: %d", small.K)
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "1") {
		t.Fatalf("bad table output: %q", out)
	}
}

func TestExtPruningGrowsWithN(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	res, err := ExtPruning(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Factor["Rice"]
	if len(f) != 5 {
		t.Fatalf("expected 5 sweep points, got %d", len(f))
	}
	for _, v := range f {
		if v < 1 {
			t.Fatalf("pruning factor %g below 1", v)
		}
	}
	// The factor must grow from the smallest to the largest N.
	if f[len(f)-1] <= f[0] {
		t.Fatalf("pruning factor did not grow with N: %v", f)
	}
}

func TestExtBatchTradeoff(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Bank"}
	res, err := ExtBatch(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 5 {
		t.Fatalf("expected 5 batch points")
	}
	// Candidates grow (weakly) with batch size; message count shrinks.
	if res.Candidates[4] < res.Candidates[0] {
		t.Fatalf("candidates should not shrink with batch: %v", res.Candidates)
	}
	if res.Rounds[4] > res.Rounds[0] {
		t.Fatalf("messages should not grow with batch: %v", res.Rounds)
	}
}

func TestExtTopkProtocols(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Credit"}
	res, err := ExtTopk(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protocols) != 3 {
		t.Fatal("expected 3 protocols")
	}
	// base sees all N-1 candidates; fagin and TA both prune.
	if res.Candidates[1] >= res.Candidates[0] || res.Candidates[2] >= res.Candidates[0] {
		t.Fatalf("pruned protocols should beat base: %v", res.Candidates)
	}
	// TA must not use fewer messages than fagin (per-round threshold check).
	if res.Messages[2] < res.Messages[1] {
		t.Fatalf("TA messages %d below fagin %d", res.Messages[2], res.Messages[1])
	}
}

func TestExtSchemeComparison(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	res, err := ExtScheme(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Projected) != 2 {
		t.Fatal("expected 2 schemes")
	}
	// Masking must project far cheaper than HE, and ship fewer bytes.
	if res.Projected[1] >= res.Projected[0] {
		t.Fatalf("secagg %g not cheaper than HE %g", res.Projected[1], res.Projected[0])
	}
	if res.Bytes[1] >= res.Bytes[0] {
		t.Fatalf("secagg bytes %d not fewer than HE %d", res.Bytes[1], res.Bytes[0])
	}
}

func TestExtDPTradeoff(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	res, err := ExtDP(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epsilons) != 5 || len(res.Accuracy) != 5 {
		t.Fatal("unexpected sweep shape")
	}
	// At very large epsilon the noisy protocol must agree with the exact one.
	if !res.Agreement[len(res.Agreement)-1] {
		t.Fatal("ε=100 should reproduce the exact selection")
	}
	for _, a := range res.Accuracy {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %g out of range", a)
		}
	}
}

func TestGridWithGBDT(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	opt.IncludeGBDT = true
	res, err := Grid(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Accuracy["GBDT"]; !ok {
		t.Fatal("GBDT rows missing from extended grid")
	}
	if acc := res.Accuracy["GBDT"]["ALL"]["Rice"]; acc < 0.7 {
		t.Fatalf("GBDT/Rice accuracy %.3f too low", acc)
	}
	// 4 models × 5 methods rows.
	if len(res.AccTable.Rows) != 20 {
		t.Fatalf("extended grid has %d rows", len(res.AccTable.Rows))
	}
}

func TestGridRepeatsAveraging(t *testing.T) {
	opt := fastOpts()
	opt.Datasets = []string{"Rice"}
	opt.Repeats = 3
	res, err := Grid(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Accuracy["KNN"]["vfps-sm"]["Rice"]
	if acc < 0 || acc > 1 {
		t.Fatalf("averaged accuracy %g out of range", acc)
	}
	if !strings.Contains(res.AccTable.Title, "mean of 3 runs") {
		t.Fatalf("title missing averaging note: %q", res.AccTable.Title)
	}
}
