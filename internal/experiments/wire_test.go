package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestWireBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{
		Rows:    60,
		Queries: 4,
		K:       3,
		Parties: 3,
		Seed:    1,
		Out:     &buf,
	}
	// Shrunken key width: the real harness runs 512-bit Paillier.
	res, err := wireAt(context.Background(), opt, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Messages) == 0 {
		t.Fatal("no message-level rows")
	}
	for _, m := range res.Messages {
		if m.BinaryBytes <= 0 || m.GobBytes <= 0 {
			t.Fatalf("%s: missing sizes %+v", m.Kind, m)
		}
		if m.Reduction <= 1 {
			t.Fatalf("%s: binary (%d B) not smaller than gob (%d B)", m.Kind, m.BinaryBytes, m.GobBytes)
		}
	}
	if len(res.EndToEnd) != 4 {
		t.Fatalf("want base+fagin × scalar+packed rows, got %d", len(res.EndToEnd))
	}
	for _, e := range res.EndToEnd {
		if !e.SelectedMatch {
			t.Fatalf("%s packed=%v: binary run selected a different set", e.Variant, e.Packed)
		}
		if e.FramingReduction <= 1 {
			t.Fatalf("%s packed=%v: framing not reduced: gob %d B, binary %d B",
				e.Variant, e.Packed, e.GobFramingBytes, e.BinaryFramingBytes)
		}
		if e.BinaryBytes >= e.GobBytes {
			t.Fatalf("%s packed=%v: binary run sent %d total bytes, gob %d",
				e.Variant, e.Packed, e.BinaryBytes, e.GobBytes)
		}
		if len(e.Selected) == 0 || e.GobSeconds <= 0 || e.BinarySeconds <= 0 {
			t.Fatalf("%s packed=%v: incomplete row %+v", e.Variant, e.Packed, e)
		}
	}
	if !strings.Contains(buf.String(), "Wire codec: gob vs binary") {
		t.Fatalf("table not printed:\n%s", buf.String())
	}
}
