package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"vfps"
	"vfps/internal/paillier"
	"vfps/internal/par"
)

// EncryptMicro reports the party-side encryption microbenchmark: the same
// N-message encryption pass run with each randomizer-production strategy,
// fully serial so the ratios isolate the arithmetic.
//
//   - Inline:      classic textbook path — uniform r, full-width r^n mod n².
//   - Windowed:    fixed-base windowing — one shared base, table lookups
//     replace every squaring (public-key holders, i.e. participants).
//   - CRT:         half-width exponentiations mod p², q² plus Garner
//     recombination (key holders only).
//   - CRTWindowed: both — half-width fixed-base tables.
//   - Pooled:      drawing prefilled randomizers, the steady-state fast path
//     (two mulmods per encryption).
//
// The Mont* fields A/B the Montgomery kernel (internal/mont) against pure
// math/big on three representative workloads with everything else fixed:
// windowed encryption and ciphertext summation are modmul-bound (the kernel's
// win — the gate asserts ≥ 1.5), CRT decryption is modexp-bound where
// big.Int.Exp already runs Montgomery internally, so the gate only asserts
// near-parity (ratio ≥ 0.9).
type EncryptMicro struct {
	N      int
	Bits   int
	Window int
	// Per-strategy wall clock for the N encryptions.
	InlineSeconds      float64
	WindowedSeconds    float64
	CRTSeconds         float64
	CRTWindowedSeconds float64
	PooledSeconds      float64
	// Speedups over InlineSeconds. WindowedSpeedup is the headline party-side
	// gain (the bench gate asserts ≥ 2 at 1024-bit keys).
	WindowedSpeedup    float64
	CRTSpeedup         float64
	CRTWindowedSpeedup float64
	PooledSpeedup      float64
	// Montgomery-kernel A/B: the same workload with the Mont knob forced off
	// (pure math/big) and on.
	MontWindowedOffSeconds float64
	MontWindowedOnSeconds  float64
	MontWindowedSpeedup    float64
	MontSumOffSeconds      float64
	MontSumOnSeconds       float64
	MontSumSpeedup         float64
	MontDecryptOffSeconds  float64
	MontDecryptOnSeconds   float64
	MontDecryptRatio       float64
}

// EncryptE2E reports one end-to-end selection under a randomizer-production
// mode. SelectedMatch asserts the contract: randomizers only blind
// ciphertexts, so every mode must select the exact participants the classic
// baseline does.
type EncryptE2E struct {
	Variant string
	// Mode is "classic" (uniform-r baseline), "windowed" (fixed-base window
	// pools), "shared" (cluster-lifetime shared PoolSet) or "mont-off"
	// (windowed with the Montgomery kernel forced off — its SelectedMatch is
	// the end-to-end proof that both arithmetic backends select identically).
	Mode          string
	Seconds       float64
	Speedup       float64
	Selected      []int
	SelectedMatch bool
}

// EncryptResult is the structured output of the encryption-path benchmark.
type EncryptResult struct {
	GOMAXPROCS  int
	Parallelism int
	Rows        int
	Queries     int
	Parties     int
	KeyBits     int
	Micro       EncryptMicro
	EndToEnd    []EncryptE2E
	Table       *Table
}

// Encrypt benchmarks the encryption hot path: every randomizer-production
// strategy against the classic inline baseline at N=256 under 1024-bit keys,
// then full BASE and SM (Fagin) selections with packing on under each pool
// mode. The selected sets must match the classic baseline exactly.
func Encrypt(ctx context.Context, opt Options) (*EncryptResult, error) {
	return encryptAt(ctx, opt, 256, 1024, 512)
}

// encryptAt is Encrypt with the microbenchmark size and key widths injectable
// so unit tests can shrink them.
func encryptAt(ctx context.Context, opt Options, vecN, vecBits, e2eBits int) (*EncryptResult, error) {
	opt = opt.withDefaults()
	res := &EncryptResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Degree(),
		Parties:     opt.Parties,
		KeyBits:     e2eBits,
	}
	res.Rows = opt.Rows
	if res.Rows > 200 {
		res.Rows = 200
	}
	res.Queries = opt.Queries
	if res.Queries > 8 {
		res.Queries = 8
	}

	if err := encryptMicro(ctx, &res.Micro, vecN, vecBits); err != nil {
		return nil, err
	}
	for _, variant := range []string{"base", "fagin"} {
		e2es, err := encryptE2E(ctx, opt, res, variant)
		if err != nil {
			return nil, err
		}
		res.EndToEnd = append(res.EndToEnd, e2es...)
	}

	res.Table = encryptTable(res)
	res.Table.Fprint(opt.Out)
	return res, nil
}

// encryptMicro times N serial encryptions under each randomizer strategy.
// The non-inline passes use pull-only pools (no background workers), so
// every draw computes through the strategy's source and the measurement is
// pure arithmetic, not scheduler behaviour.
func encryptMicro(ctx context.Context, m *EncryptMicro, n, bits int) error {
	m.N, m.Bits, m.Window = n, bits, paillier.DefaultWindow
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return err
	}
	pk := &key.PublicKey
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(i%97) + 1)
	}

	timeIt := func(f func(m *big.Int) error) (float64, error) {
		start := time.Now()
		for i, msg := range ms {
			if i%16 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			if err := f(msg); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	viaPool := func(o paillier.PoolOptions) (float64, error) {
		rz := paillier.NewRandomizerOpts(pk, rand.Reader, o)
		defer rz.Close()
		return timeIt(func(msg *big.Int) error {
			_, err := pk.EncryptWith(rz, msg)
			return err
		})
	}

	if m.InlineSeconds, err = timeIt(func(msg *big.Int) error {
		_, err := pk.Encrypt(rand.Reader, msg)
		return err
	}); err != nil {
		return err
	}
	if m.WindowedSeconds, err = viaPool(paillier.PoolOptions{Workers: -1}); err != nil {
		return err
	}
	if m.CRTSeconds, err = timeIt(func(msg *big.Int) error {
		_, err := key.Encrypt(rand.Reader, msg)
		return err
	}); err != nil {
		return err
	}
	if m.CRTWindowedSeconds, err = viaPool(paillier.PoolOptions{Workers: -1, Key: key}); err != nil {
		return err
	}

	// Steady state: a fully prefilled pool, every draw a hit.
	rz := paillier.NewRandomizerOpts(pk, rand.Reader, paillier.PoolOptions{Buffer: n, Workers: -1})
	defer rz.Close()
	if _, err := rz.Prefill(n); err != nil {
		return err
	}
	if m.PooledSeconds, err = timeIt(func(msg *big.Int) error {
		_, err := pk.EncryptWith(rz, msg)
		return err
	}); err != nil {
		return err
	}

	m.WindowedSpeedup = speedup(m.InlineSeconds, m.WindowedSeconds)
	m.CRTSpeedup = speedup(m.InlineSeconds, m.CRTSeconds)
	m.CRTWindowedSpeedup = speedup(m.InlineSeconds, m.CRTWindowedSeconds)
	m.PooledSpeedup = speedup(m.InlineSeconds, m.PooledSeconds)

	if err := encryptMontAB(ctx, m, key, ms); err != nil {
		return err
	}
	return nil
}

// encryptMontAB times three workloads with the Montgomery kernel forced off,
// then on, everything else identical. Pools are rebuilt per knob setting so
// each arm's fixed-base tables carry the representation under test.
func encryptMontAB(ctx context.Context, m *EncryptMicro, key *paillier.PrivateKey, ms []*big.Int) error {
	pk := &key.PublicKey
	defer func() { pk.Mont = 0 }()

	// Shared inputs: one batch of ciphertexts to fold and one to decrypt.
	// Residues are backend-independent, so both arms fold the same values.
	sumN := 64
	if sumN > len(ms)*4 {
		sumN = len(ms) * 4
	}
	cs := make([]*paillier.Ciphertext, sumN)
	for i := range cs {
		c, err := key.Encrypt(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			return err
		}
		cs[i] = c
	}

	loop := func(f func() error) (float64, error) {
		start := time.Now()
		for i := 0; i < len(ms); i++ {
			if i%16 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}

	for _, arm := range []struct {
		knob          int
		enc, sum, dec *float64
	}{
		{-1, &m.MontWindowedOffSeconds, &m.MontSumOffSeconds, &m.MontDecryptOffSeconds},
		{1, &m.MontWindowedOnSeconds, &m.MontSumOnSeconds, &m.MontDecryptOnSeconds},
	} {
		pk.Mont = arm.knob
		rz := paillier.NewRandomizerOpts(pk, rand.Reader, paillier.PoolOptions{Workers: -1})
		var err error
		i := 0
		*arm.enc, err = loop(func() error {
			i++
			_, err := pk.EncryptWith(rz, ms[i%len(ms)])
			return err
		})
		rz.Close()
		if err != nil {
			return err
		}
		if *arm.sum, err = loop(func() error {
			_, err := pk.Sum(cs...)
			return err
		}); err != nil {
			return err
		}
		if *arm.dec, err = loop(func() error {
			_, err := key.Decrypt(cs[0])
			return err
		}); err != nil {
			return err
		}
	}

	m.MontWindowedSpeedup = speedup(m.MontWindowedOffSeconds, m.MontWindowedOnSeconds)
	m.MontSumSpeedup = speedup(m.MontSumOffSeconds, m.MontSumOnSeconds)
	m.MontDecryptRatio = speedup(m.MontDecryptOffSeconds, m.MontDecryptOnSeconds)
	return nil
}

// encryptE2E wall-clocks one selection variant under each randomizer mode
// and checks every mode selects the classic baseline's participants.
func encryptE2E(ctx context.Context, opt Options, res *EncryptResult, variant string) ([]EncryptE2E, error) {
	run := func(window, mont int, shared *vfps.PoolSet) (*vfps.Selection, error) {
		d, err := vfps.GenerateDataset("Bank", res.Rows)
		if err != nil {
			return nil, err
		}
		pt, err := vfps.VerticalSplit(d, res.Parties, opt.Seed+101)
		if err != nil {
			return nil, err
		}
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition:     pt,
			Labels:        d.Y,
			Classes:       d.Classes,
			Scheme:        "paillier",
			KeyBits:       res.KeyBits,
			ShuffleSeed:   opt.Seed + 303,
			Pack:          true,
			EncryptWindow: window,
			Mont:          mont,
			SharedPool:    shared,
		})
		if err != nil {
			return nil, err
		}
		defer cons.Close()
		return cons.Select(ctx, opt.SelectCount, vfps.SelectOptions{
			K:          opt.K,
			NumQueries: res.Queries,
			Seed:       opt.Seed,
			TopK:       variant,
		})
	}

	classic, err := run(-1, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("%s classic: %w", variant, err)
	}
	out := []EncryptE2E{{
		Variant:       variant,
		Mode:          "classic",
		Seconds:       classic.WallTime.Seconds(),
		Speedup:       1,
		Selected:      classic.Selected,
		SelectedMatch: true,
	}}

	ps := vfps.NewPoolSet(0, 1)
	defer ps.Close()
	for _, mode := range []struct {
		name   string
		window int
		mont   int
		shared *vfps.PoolSet
	}{
		{"windowed", 0, 0, nil},
		{"shared", 0, 0, ps},
		{"mont-off", 0, -1, nil},
	} {
		sel, err := run(mode.window, mode.mont, mode.shared)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", variant, mode.name, err)
		}
		out = append(out, EncryptE2E{
			Variant:       variant,
			Mode:          mode.name,
			Seconds:       sel.WallTime.Seconds(),
			Speedup:       speedup(classic.WallTime.Seconds(), sel.WallTime.Seconds()),
			Selected:      sel.Selected,
			SelectedMatch: equalInts(classic.Selected, sel.Selected),
		})
	}
	return out, nil
}

func encryptTable(r *EncryptResult) *Table {
	m := r.Micro
	t := &Table{
		Title: fmt.Sprintf("Encryption hot path (GOMAXPROCS=%d, degree=%d, window=%d)",
			r.GOMAXPROCS, r.Parallelism, m.Window),
		Header: []string{"workload", "baseline", "optimised", "gain"},
	}
	base := fmtSeconds(m.InlineSeconds)
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("Encrypt n=%d b=%d fixed-base w=%d", m.N, m.Bits, m.Window),
			base, fmtSeconds(m.WindowedSeconds), fmt.Sprintf("%.2fx", m.WindowedSpeedup)},
		[]string{fmt.Sprintf("Encrypt n=%d b=%d CRT", m.N, m.Bits),
			base, fmtSeconds(m.CRTSeconds), fmt.Sprintf("%.2fx", m.CRTSpeedup)},
		[]string{fmt.Sprintf("Encrypt n=%d b=%d CRT+window", m.N, m.Bits),
			base, fmtSeconds(m.CRTWindowedSeconds), fmt.Sprintf("%.2fx", m.CRTWindowedSpeedup)},
		[]string{fmt.Sprintf("Encrypt n=%d b=%d prefilled pool", m.N, m.Bits),
			base, fmtSeconds(m.PooledSeconds), fmt.Sprintf("%.2fx", m.PooledSpeedup)},
		[]string{fmt.Sprintf("Mont kernel: windowed encrypt n=%d b=%d", m.N, m.Bits),
			fmtSeconds(m.MontWindowedOffSeconds), fmtSeconds(m.MontWindowedOnSeconds),
			fmt.Sprintf("%.2fx", m.MontWindowedSpeedup)},
		[]string{fmt.Sprintf("Mont kernel: sum of 64 ciphertexts x%d b=%d", m.N, m.Bits),
			fmtSeconds(m.MontSumOffSeconds), fmtSeconds(m.MontSumOnSeconds),
			fmt.Sprintf("%.2fx", m.MontSumSpeedup)},
		[]string{fmt.Sprintf("Mont kernel: CRT decrypt n=%d b=%d", m.N, m.Bits),
			fmtSeconds(m.MontDecryptOffSeconds), fmtSeconds(m.MontDecryptOnSeconds),
			fmt.Sprintf("%.2fx", m.MontDecryptRatio)},
	)
	var classicSecs float64
	for _, e := range r.EndToEnd {
		if e.Mode == "classic" {
			classicSecs = e.Seconds
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("selection %s/%s n=%d q=%d (match=%v)",
				e.Variant, e.Mode, r.Rows, r.Queries, e.SelectedMatch),
			fmtSeconds(classicSecs), fmtSeconds(e.Seconds),
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}
	return t
}
