#!/usr/bin/env bash
# soak.sh — multi-process soak with tail-latency gates.
#
# Spins up a real TCP deployment (key server, SOAK_PARTIES participants, the
# aggregation server) plus a vfpsserve collector, runs SOAK_ROUNDS rounds of
# concurrent KNN queries through the leader, and then asserts:
#
#   * throughput:   queries/second >= SOAK_MIN_QPS,
#   * tail latency: per-query p99 <= SOAK_P99_MS (p50 reported alongside),
#   * tracing:      the collector's /v1/trace span forest contains a single
#                   trace whose spans come from >= 3 distinct processes with
#                   every parent link resolved (0 orphans),
#   * accounting:   the leader's -log-json query log carries one structured
#                   event per query; vfpsserve's /v1/slow flight recorder is
#                   non-empty after an HTTP-driven selection,
#   * metrics:      the Go runtime families and the kind-labelled transport
#                   error counter are exposed.
#
# The summary is written as SOAK_OUT (default SOAK_summary.json) under a
# top-level "soak" key and handed to scripts/bench_compare.sh, which requires
# the summary keys so a renamed field can never silently drop a gate.
#
# Environment knobs (defaults in parentheses):
#   SOAK_ROUNDS (2)  SOAK_QUERIES (8)  SOAK_QWORKERS (2)  SOAK_PARTIES (3)
#   SOAK_P99_MS (10000)  SOAK_MIN_QPS (0.2)  SOAK_PORT_BASE (19300)
#   SOAK_OUT (SOAK_summary.json)
set -euo pipefail

ROUNDS="${SOAK_ROUNDS:-2}"
QUERIES="${SOAK_QUERIES:-8}"
QWORKERS="${SOAK_QWORKERS:-2}"
PARTIES="${SOAK_PARTIES:-3}"
P99_MS="${SOAK_P99_MS:-10000}"
MIN_QPS="${SOAK_MIN_QPS:-0.2}"
BASE="${SOAK_PORT_BASE:-19300}"
OUT="${SOAK_OUT:-SOAK_summary.json}"
ROWS=120
K=4

command -v jq >/dev/null || { echo "soak: jq not found" >&2; exit 1; }

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    for pid in "${PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "${WORK}"
}
trap cleanup EXIT

say() { echo "soak: $*"; }
die() { echo "soak: FAIL: $*" >&2; exit 1; }

wait_tcp() { # host:port
    local hp=$1 i
    for i in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${hp%:*}/${hp#*:}") 2>/dev/null; then exec 3>&- || true; return 0; fi
        sleep 0.1
    done
    return 1
}

say "building vfpsnode and vfpsserve"
go build -o "${WORK}/vfpsnode" ./cmd/vfpsnode
go build -o "${WORK}/vfpsserve" ./cmd/vfpsserve

KEY_TCP="127.0.0.1:$((BASE + 1))";  KEY_OBS="127.0.0.1:$((BASE + 31))"
AGG_TCP="127.0.0.1:$((BASE + 2))";  AGG_OBS="127.0.0.1:$((BASE + 32))"
LEADER_OBS="127.0.0.1:$((BASE + 33))"
SERVE_ADDR="127.0.0.1:$((BASE + 20))"

DIRECTORY="keyserver=${KEY_TCP},aggserver=${AGG_TCP}"
PEERS="http://${KEY_OBS},http://${AGG_OBS},http://${LEADER_OBS}"
PARTY_OBS=()
for i in $(seq 0 $((PARTIES - 1))); do
    tcp="127.0.0.1:$((BASE + 10 + i))"; obs="127.0.0.1:$((BASE + 40 + i))"
    DIRECTORY="${DIRECTORY},party/${i}=${tcp}"
    PEERS="${PEERS},http://${obs}"
    PARTY_OBS+=("${obs}")
done

# The full payload pipeline rides the soak: slot packing with per-round
# adaptive renegotiation, chunked streaming of collection responses over the
# real TCP transport, and the cross-round delta cache (repeat rounds rerun
# the same query set, so round 2+ must hit it).
COMMON=(-scheme paillier -keybits 256 -wire binary -dataset Bank -rows "${ROWS}" \
        -parties "${PARTIES}" -directory "${DIRECTORY}" \
        -pack -pack-adaptive -chunk-bytes 2048 -delta-cache)

start_node() { # logname, args...
    local log="${WORK}/$1.log"; shift
    "${WORK}/vfpsnode" "$@" >"${log}" 2>&1 &
    PIDS+=($!)
}

say "starting key server, ${PARTIES} participants, aggregation server"
start_node keyserver -role keyserver -addr "${KEY_TCP}" -obs-addr "${KEY_OBS}" "${COMMON[@]}"
wait_tcp "${KEY_TCP}" || die "key server did not come up"
for i in $(seq 0 $((PARTIES - 1))); do
    start_node "party${i}" -role party -index "${i}" -addr "127.0.0.1:$((BASE + 10 + i))" \
        -obs-addr "127.0.0.1:$((BASE + 40 + i))" "${COMMON[@]}"
done
for i in $(seq 0 $((PARTIES - 1))); do
    wait_tcp "127.0.0.1:$((BASE + 10 + i))" || die "party ${i} did not come up"
done
start_node aggserver -role aggserver -addr "${AGG_TCP}" -obs-addr "${AGG_OBS}" "${COMMON[@]}"
wait_tcp "${AGG_TCP}" || die "aggregation server did not come up"

say "starting vfpsserve collector on ${SERVE_ADDR}"
"${WORK}/vfpsserve" -addr "${SERVE_ADDR}" -peers "${PEERS}" -slow-ring 16 \
    >"${WORK}/serve.log" 2>&1 &
PIDS+=($!)
wait_tcp "${SERVE_ADDR}" || die "vfpsserve did not come up"

say "running leader: ${ROUNDS} round(s) x ${QUERIES} queries, ${QWORKERS} worker(s)"
QLOG="${WORK}/leader_queries.jsonl"
start_node leader -role leader -k "${K}" -queries "${QUERIES}" -rounds "${ROUNDS}" \
    -qworkers "${QWORKERS}" -parallelism 2 -obs-addr "${LEADER_OBS}" \
    -log-json "${QLOG}" -linger 60s "${COMMON[@]}"
LEADER_PID="${PIDS[-1]}"
LEADER_LOG="${WORK}/leader.log"
for i in $(seq 1 600); do
    grep -q "lingering" "${LEADER_LOG}" 2>/dev/null && break
    kill -0 "${LEADER_PID}" 2>/dev/null || { cat "${LEADER_LOG}" >&2; die "leader exited early"; }
    sleep 0.1
done
grep -q "lingering" "${LEADER_LOG}" || { cat "${LEADER_LOG}" >&2; die "leader never finished its rounds"; }

# --- throughput and tail latency from the structured query log ---------------
TOTAL=$((ROUNDS * QUERIES))
EVENTS=$(jq -s '[.[] | select(.event.kind == "query")] | length' "${QLOG}")
[ "${EVENTS}" -eq "${TOTAL}" ] || die "query log has ${EVENTS} query events, want ${TOTAL}"
jq -s -e '[.[] | select(.event.kind == "query") | .event] | all(.id != "" and .trace != "" and (.phases | length) > 0)' \
    "${QLOG}" >/dev/null || die "query events missing id/trace/phases"

# --- chunked streaming over TCP ----------------------------------------------
# Every query must have streamed its collection response in chunks, and no
# query may have logged a chunk-reassembly error.
jq -s -e '[.[] | select(.event.kind == "query") | .event] | all(.attrs.chunks >= 1)' \
    "${QLOG}" >/dev/null || die "queries ran without chunked collection responses (attrs.chunks missing or 0)"
CHUNK_ERRS=$(jq -s '[.[] | select(.event.kind == "query") | .event.attrs.error // "" | select(test("chunk"))] | length' "${QLOG}")
[ "${CHUNK_ERRS}" -eq 0 ] || die "${CHUNK_ERRS} query event(s) carry chunk-reassembly errors"
say "chunked streaming: all ${TOTAL} queries chunked, 0 reassembly errors"

WALL=$(awk '/^round [0-9]+:/ { for (i=1; i<=NF; i++) if ($i == "in") { sub(/s$/, "", $(i+1)); w += $(i+1) } } END { printf "%.6f", w }' "${LEADER_LOG}")
read -r P50MS P99MS QPS <<EOF
$(jq -s --argjson wall "${WALL}" '
    [.[] | select(.event.kind == "query") | .event.seconds] | sort as $s | ($s | length) as $n
    | [ ($s[(($n - 1) * 0.5 | round)] * 1000),
        ($s[(($n - 1) * 0.99 | round)] * 1000),
        (if $wall > 0 then $n / $wall else 0 end) ]
    | map(. * 1000 | round / 1000) | @tsv' -r "${QLOG}")
EOF
say "latency: p50 ${P50MS}ms p99 ${P99MS}ms, throughput ${QPS} q/s over ${WALL}s"
jq -n -e --argjson p99 "${P99MS}" --argjson lim "${P99_MS}" '$p99 <= $lim' >/dev/null \
    || die "p99 ${P99MS}ms exceeds gate SOAK_P99_MS=${P99_MS}ms"
jq -n -e --argjson qps "${QPS}" --argjson min "${MIN_QPS}" '$qps >= $min' >/dev/null \
    || die "throughput ${QPS} q/s below gate SOAK_MIN_QPS=${MIN_QPS}"

# --- cross-process span forest from the collector ----------------------------
say "scraping collector span forest"
TRACE="${WORK}/trace.json"
curl -sf "http://${SERVE_ADDR}/v1/trace" > "${TRACE}" || die "collector /v1/trace scrape failed"
if jq -e '.peerErrors | length > 0' "${TRACE}" >/dev/null 2>&1; then
    die "collector failed to scrape peers: $(jq -c '.peerErrors' "${TRACE}")"
fi
BEST="${WORK}/best_trace.json"
jq -e '[.forest[] | select((.nodes | length) >= 3)] | max_by(.nodes | length)' \
    "${TRACE}" > "${BEST}" 2>/dev/null \
    || die "no trace spans >= 3 distinct processes (forest: $(jq -c '[.forest[].nodes]' "${TRACE}"))"
TRACE_ID=$(jq -r '.trace' "${BEST}")
PROCESSES=$(jq '.nodes | length' "${BEST}")
ORPHANS=$(jq '.orphans' "${BEST}")
say "trace ${TRACE_ID}: $(jq '.spans | length' "${BEST}") spans across ${PROCESSES} processes $(jq -c '.nodes' "${BEST}")"
[ "${ORPHANS}" -eq 0 ] || die "trace ${TRACE_ID} has ${ORPHANS} unresolved parent links"

kill "${LEADER_PID}" 2>/dev/null || true

# --- flight recorder and metric families -------------------------------------
say "driving one HTTP selection for the flight recorder"
CID=$(curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums" \
    -d '{"dataset":"Rice","rows":120,"parties":3,"scheme":"plain"}' \
    | jq -r '.id')
[ -n "${CID}" ] && [ "${CID}" != "null" ] || die "consortium creation failed"
curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums/${CID}/select" \
    -d '{"count":2,"k":4,"numQueries":6,"seed":1}' >/dev/null || die "HTTP selection failed"
SLOW_COUNT=$(curl -sf "http://${SERVE_ADDR}/v1/slow" | jq '.count')
[ "${SLOW_COUNT}" -ge 1 ] || die "/v1/slow is empty after a selection"
say "/v1/slow retains ${SLOW_COUNT} event(s)"

METRICS="${WORK}/metrics.txt"
curl -sf "http://${SERVE_ADDR}/metrics" > "${METRICS}" || die "collector /metrics scrape failed"
for family in vfps_go_goroutines vfps_go_heap_alloc_bytes vfps_go_gc_pause_seconds_total; do
    grep -q "^# TYPE ${family} " "${METRICS}" || die "/metrics missing runtime family ${family}"
done
grep -q '^# HELP vfps_transport_errors_total .*by kind' "${METRICS}" \
    || die "transport error counter lost its kind label documentation"
curl -sf "http://${AGG_OBS}/metrics" > "${WORK}/agg_metrics.txt" \
    || die "aggserver /metrics scrape failed"
grep -q '^# TYPE vfps_go_goroutines ' "${WORK}/agg_metrics.txt" \
    || die "aggserver obs listener missing runtime metrics"
for family in vfps_delta_cache_hits_total vfps_delta_cache_misses_total; do
    grep -q "^# TYPE ${family} " "${WORK}/agg_metrics.txt" \
        || die "aggserver /metrics missing delta-cache family ${family}"
done
if [ "${ROUNDS}" -gt 1 ]; then
    # Repeat rounds rerun the identical query set, so the aggregation
    # server's receive-side delta cache must have recorded real hits.
    grep -q '^vfps_delta_cache_hits_total{.*} [1-9]' "${WORK}/agg_metrics.txt" \
        || die "no delta-cache hits recorded across ${ROUNDS} repeat rounds"
fi
curl -sf "http://${PARTY_OBS[0]}/metrics" > "${WORK}/party_metrics.txt" \
    || die "party obs /metrics scrape failed"
grep -q '^vfps_he_pack_slots{.*} [1-9]' "${WORK}/party_metrics.txt" \
    || die "party recorded no pack-slot geometry despite -pack"

# --- summary + gate-key contract ---------------------------------------------
jq -n \
    --argjson queries "${TOTAL}" --argjson qps "${QPS}" \
    --argjson p50 "${P50MS}" --argjson p99 "${P99MS}" \
    --argjson procs "${PROCESSES}" --arg trace "${TRACE_ID}" \
    --argjson slow "${SLOW_COUNT}" \
    '{soak: {queries: $queries, qps: $qps, p50Ms: $p50, p99Ms: $p99,
             processes: $procs, traceId: $trace, slowEvents: $slow}}' > "${OUT}"
say "summary written to ${OUT}"
./scripts/bench_compare.sh "${OUT}"

say "OK"
