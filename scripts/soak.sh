#!/usr/bin/env bash
# soak.sh — multi-process soak with tail-latency gates.
#
# Spins up a real TCP deployment (key server, SOAK_PARTIES participants,
# SOAK_SHARD_WORKERS aggregation shard workers, the aggregation server) plus
# a vfpsserve collector, runs SOAK_ROUNDS rounds of concurrent KNN queries
# through the leader, and then asserts:
#
#   * throughput:   queries/second >= SOAK_MIN_QPS,
#   * tail latency: per-query p99 <= SOAK_P99_MS (p50 reported alongside),
#   * tracing:      the collector's /v1/trace span forest contains a single
#                   trace whose spans come from >= 3 distinct processes with
#                   every parent link resolved (0 orphans),
#   * accounting:   the leader's -log-json query log carries one structured
#                   event per query; vfpsserve's /v1/slow flight recorder is
#                   non-empty after an HTTP-driven selection,
#   * metrics:      the Go runtime families and the kind-labelled transport
#                   error counter are exposed,
#   * sharding:     with SOAK_SHARD_WORKERS >= 2 the reduce runs through the
#                   aggworker processes (their spans join the trace forest and
#                   the delta-cache hits move to them),
#   * churn:        an HTTP join/select/leave cycle on a live consortium
#                   returns the roster to its original membership and the
#                   post-churn selection is bit-identical to the pre-churn
#                   one; removing an unknown participant 404s.
#
# It then runs the multi-tenant load arm: an admission-controlled vfpsserve
# multiplexes SOAK_MT_CONSORTIUMS sharded consortiums, first sequentially and
# then concurrently, gating
#
#   * concurrent/sequential throughput speedup >= SOAK_MIN_MT_SPEEDUP (the
#     default scales with the machine: 2.0 with >= 3 cores, 1.5 with 2, 0.9
#     on a single core where concurrency cannot beat sequential by CPU — the
#     floor then only catches pathological contention),
#   * concurrent-phase p99 <= SOAK_MT_P99_MS,
#   * admission accounting: every load request admitted, and a budget probe
#     against a 1-op tenant HE budget must be rejected with 429.
#
# The summary is written as SOAK_OUT (default SOAK_summary.json) under a
# top-level "soak" key and handed to scripts/bench_compare.sh, which requires
# the summary keys so a renamed field can never silently drop a gate.
#
# Environment knobs (defaults in parentheses):
#   SOAK_ROUNDS (2)  SOAK_QUERIES (8)  SOAK_QWORKERS (2)  SOAK_PARTIES (3)
#   SOAK_SHARD_WORKERS (2)  SOAK_P99_MS (10000)  SOAK_MIN_QPS (0.2)
#   SOAK_MT_CONSORTIUMS (3)  SOAK_MT_ROUNDS (2)  SOAK_MT_P99_MS (20000)
#   SOAK_MIN_MT_SPEEDUP (by core count, see above)
#   SOAK_PORT_BASE (19300)  SOAK_OUT (SOAK_summary.json)
set -euo pipefail

ROUNDS="${SOAK_ROUNDS:-2}"
QUERIES="${SOAK_QUERIES:-8}"
QWORKERS="${SOAK_QWORKERS:-2}"
PARTIES="${SOAK_PARTIES:-3}"
SHARD_WORKERS="${SOAK_SHARD_WORKERS:-2}"
P99_MS="${SOAK_P99_MS:-10000}"
MIN_QPS="${SOAK_MIN_QPS:-0.2}"
NCONS="${SOAK_MT_CONSORTIUMS:-3}"
MT_ROUNDS="${SOAK_MT_ROUNDS:-2}"
MT_P99_MS="${SOAK_MT_P99_MS:-20000}"
BASE="${SOAK_PORT_BASE:-19300}"
OUT="${SOAK_OUT:-SOAK_summary.json}"
ROWS=120
K=4

command -v jq >/dev/null || { echo "soak: jq not found" >&2; exit 1; }

# The concurrent-vs-sequential speedup a machine can deliver depends on its
# cores: the 2x contract needs >= 3 (workers + coordinator), 2 cores can
# overlap partially, and on 1 core concurrency cannot beat sequential at all
# — there the floor only catches pathological lock contention (> 10% loss).
CORES=$(nproc 2>/dev/null || echo 1)
if [ "${CORES}" -ge 3 ]; then DEFAULT_MT_SPEEDUP=2.0
elif [ "${CORES}" -eq 2 ]; then DEFAULT_MT_SPEEDUP=1.5
else DEFAULT_MT_SPEEDUP=0.9; fi
MIN_MT_SPEEDUP="${SOAK_MIN_MT_SPEEDUP:-${DEFAULT_MT_SPEEDUP}}"

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    for pid in "${PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "${WORK}"
}
trap cleanup EXIT

say() { echo "soak: $*"; }
die() { echo "soak: FAIL: $*" >&2; exit 1; }

wait_tcp() { # host:port
    local hp=$1 i
    for i in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${hp%:*}/${hp#*:}") 2>/dev/null; then exec 3>&- || true; return 0; fi
        sleep 0.1
    done
    return 1
}

say "building vfpsnode and vfpsserve"
go build -o "${WORK}/vfpsnode" ./cmd/vfpsnode
go build -o "${WORK}/vfpsserve" ./cmd/vfpsserve

KEY_TCP="127.0.0.1:$((BASE + 1))";  KEY_OBS="127.0.0.1:$((BASE + 31))"
AGG_TCP="127.0.0.1:$((BASE + 2))";  AGG_OBS="127.0.0.1:$((BASE + 32))"
LEADER_OBS="127.0.0.1:$((BASE + 33))"
SERVE_ADDR="127.0.0.1:$((BASE + 20))"
MT_ADDR="127.0.0.1:$((BASE + 21))"
PROBE_ADDR="127.0.0.1:$((BASE + 22))"

# Mirror vfl.PlanSubtrees: the smallest power-of-two subtree spreading
# PARTIES over at most SHARD_WORKERS shards, and the resulting shard count.
SHARDS=0
SUBTREE=0
if [ "${SHARD_WORKERS}" -ge 2 ]; then
    need=$(( (PARTIES + SHARD_WORKERS - 1) / SHARD_WORKERS ))
    SUBTREE=1
    while [ "${SUBTREE}" -lt "${need}" ]; do SUBTREE=$((SUBTREE * 2)); done
    SHARDS=$(( (PARTIES + SUBTREE - 1) / SUBTREE ))
    [ "${SHARDS}" -ge 2 ] || { SHARDS=0; SUBTREE=0; }
fi

DIRECTORY="keyserver=${KEY_TCP},aggserver=${AGG_TCP}"
PEERS="http://${KEY_OBS},http://${AGG_OBS},http://${LEADER_OBS}"
PARTY_OBS=()
for i in $(seq 0 $((PARTIES - 1))); do
    tcp="127.0.0.1:$((BASE + 10 + i))"; obs="127.0.0.1:$((BASE + 40 + i))"
    DIRECTORY="${DIRECTORY},party/${i}=${tcp}"
    PEERS="${PEERS},http://${obs}"
    PARTY_OBS+=("${obs}")
done
WORKER_OBS=()
if [ "${SHARDS}" -ge 2 ]; then
    for i in $(seq 0 $((SHARDS - 1))); do
        tcp="127.0.0.1:$((BASE + 5 + i))"; obs="127.0.0.1:$((BASE + 50 + i))"
        DIRECTORY="${DIRECTORY},aggworker/${i}=${tcp}"
        PEERS="${PEERS},http://${obs}"
        WORKER_OBS+=("${obs}")
    done
fi

# The full payload pipeline rides the soak: slot packing with per-round
# adaptive renegotiation, chunked streaming of collection responses over the
# real TCP transport, and the cross-round delta cache (repeat rounds rerun
# the same query set, so round 2+ must hit it).
COMMON=(-scheme paillier -keybits 256 -wire binary -dataset Bank -rows "${ROWS}" \
        -parties "${PARTIES}" -directory "${DIRECTORY}" \
        -pack -pack-adaptive -chunk-bytes 2048 -delta-cache)

start_node() { # logname, args...
    local log="${WORK}/$1.log"; shift
    "${WORK}/vfpsnode" "$@" >"${log}" 2>&1 &
    PIDS+=($!)
}

say "starting key server, ${PARTIES} participants, ${SHARDS} shard workers, aggregation server"
start_node keyserver -role keyserver -addr "${KEY_TCP}" -obs-addr "${KEY_OBS}" "${COMMON[@]}"
wait_tcp "${KEY_TCP}" || die "key server did not come up"
for i in $(seq 0 $((PARTIES - 1))); do
    start_node "party${i}" -role party -index "${i}" -addr "127.0.0.1:$((BASE + 10 + i))" \
        -obs-addr "127.0.0.1:$((BASE + 40 + i))" "${COMMON[@]}"
done
for i in $(seq 0 $((PARTIES - 1))); do
    wait_tcp "127.0.0.1:$((BASE + 10 + i))" || die "party ${i} did not come up"
done
if [ "${SHARDS}" -ge 2 ]; then
    for i in $(seq 0 $((SHARDS - 1))); do
        start_node "aggworker${i}" -role aggworker -index "${i}" -shard-workers "${SHARD_WORKERS}" \
            -addr "127.0.0.1:$((BASE + 5 + i))" -obs-addr "127.0.0.1:$((BASE + 50 + i))" "${COMMON[@]}"
    done
    for i in $(seq 0 $((SHARDS - 1))); do
        wait_tcp "127.0.0.1:$((BASE + 5 + i))" || die "aggworker ${i} did not come up"
    done
    start_node aggserver -role aggserver -shard-workers "${SHARD_WORKERS}" \
        -addr "${AGG_TCP}" -obs-addr "${AGG_OBS}" "${COMMON[@]}"
else
    start_node aggserver -role aggserver -addr "${AGG_TCP}" -obs-addr "${AGG_OBS}" "${COMMON[@]}"
fi
wait_tcp "${AGG_TCP}" || die "aggregation server did not come up"

say "starting vfpsserve collector on ${SERVE_ADDR}"
"${WORK}/vfpsserve" -addr "${SERVE_ADDR}" -peers "${PEERS}" -slow-ring 16 \
    >"${WORK}/serve.log" 2>&1 &
PIDS+=($!)
wait_tcp "${SERVE_ADDR}" || die "vfpsserve did not come up"

say "running leader: ${ROUNDS} round(s) x ${QUERIES} queries, ${QWORKERS} worker(s)"
QLOG="${WORK}/leader_queries.jsonl"
start_node leader -role leader -k "${K}" -queries "${QUERIES}" -rounds "${ROUNDS}" \
    -qworkers "${QWORKERS}" -parallelism 2 -obs-addr "${LEADER_OBS}" \
    -log-json "${QLOG}" -linger 60s "${COMMON[@]}"
LEADER_PID="${PIDS[-1]}"
LEADER_LOG="${WORK}/leader.log"
for i in $(seq 1 600); do
    grep -q "lingering" "${LEADER_LOG}" 2>/dev/null && break
    kill -0 "${LEADER_PID}" 2>/dev/null || { cat "${LEADER_LOG}" >&2; die "leader exited early"; }
    sleep 0.1
done
grep -q "lingering" "${LEADER_LOG}" || { cat "${LEADER_LOG}" >&2; die "leader never finished its rounds"; }

# --- throughput and tail latency from the structured query log ---------------
TOTAL=$((ROUNDS * QUERIES))
EVENTS=$(jq -s '[.[] | select(.event.kind == "query")] | length' "${QLOG}")
[ "${EVENTS}" -eq "${TOTAL}" ] || die "query log has ${EVENTS} query events, want ${TOTAL}"
jq -s -e '[.[] | select(.event.kind == "query") | .event] | all(.id != "" and .trace != "" and (.phases | length) > 0)' \
    "${QLOG}" >/dev/null || die "query events missing id/trace/phases"

# --- chunked streaming over TCP ----------------------------------------------
# Every query must have streamed its collection response in chunks, and no
# query may have logged a chunk-reassembly error.
jq -s -e '[.[] | select(.event.kind == "query") | .event] | all(.attrs.chunks >= 1)' \
    "${QLOG}" >/dev/null || die "queries ran without chunked collection responses (attrs.chunks missing or 0)"
CHUNK_ERRS=$(jq -s '[.[] | select(.event.kind == "query") | .event.attrs.error // "" | select(test("chunk"))] | length' "${QLOG}")
[ "${CHUNK_ERRS}" -eq 0 ] || die "${CHUNK_ERRS} query event(s) carry chunk-reassembly errors"
say "chunked streaming: all ${TOTAL} queries chunked, 0 reassembly errors"

WALL=$(awk '/^round [0-9]+:/ { for (i=1; i<=NF; i++) if ($i == "in") { sub(/s$/, "", $(i+1)); w += $(i+1) } } END { printf "%.6f", w }' "${LEADER_LOG}")
read -r P50MS P99MS QPS <<EOF
$(jq -s --argjson wall "${WALL}" '
    [.[] | select(.event.kind == "query") | .event.seconds] | sort as $s | ($s | length) as $n
    | [ ($s[(($n - 1) * 0.5 | round)] * 1000),
        ($s[(($n - 1) * 0.99 | round)] * 1000),
        (if $wall > 0 then $n / $wall else 0 end) ]
    | map(. * 1000 | round / 1000) | @tsv' -r "${QLOG}")
EOF
say "latency: p50 ${P50MS}ms p99 ${P99MS}ms, throughput ${QPS} q/s over ${WALL}s"
jq -n -e --argjson p99 "${P99MS}" --argjson lim "${P99_MS}" '$p99 <= $lim' >/dev/null \
    || die "p99 ${P99MS}ms exceeds gate SOAK_P99_MS=${P99_MS}ms"
jq -n -e --argjson qps "${QPS}" --argjson min "${MIN_QPS}" '$qps >= $min' >/dev/null \
    || die "throughput ${QPS} q/s below gate SOAK_MIN_QPS=${MIN_QPS}"

# --- cross-process span forest from the collector ----------------------------
say "scraping collector span forest"
TRACE="${WORK}/trace.json"
curl -sf "http://${SERVE_ADDR}/v1/trace" > "${TRACE}" || die "collector /v1/trace scrape failed"
if jq -e '.peerErrors | length > 0' "${TRACE}" >/dev/null 2>&1; then
    die "collector failed to scrape peers: $(jq -c '.peerErrors' "${TRACE}")"
fi
BEST="${WORK}/best_trace.json"
jq -e '[.forest[] | select((.nodes | length) >= 3)] | max_by(.nodes | length)' \
    "${TRACE}" > "${BEST}" 2>/dev/null \
    || die "no trace spans >= 3 distinct processes (forest: $(jq -c '[.forest[].nodes]' "${TRACE}"))"
TRACE_ID=$(jq -r '.trace' "${BEST}")
PROCESSES=$(jq '.nodes | length' "${BEST}")
ORPHANS=$(jq '.orphans' "${BEST}")
say "trace ${TRACE_ID}: $(jq '.spans | length' "${BEST}") spans across ${PROCESSES} processes $(jq -c '.nodes' "${BEST}")"
[ "${ORPHANS}" -eq 0 ] || die "trace ${TRACE_ID} has ${ORPHANS} unresolved parent links"
if [ "${SHARDS}" -ge 2 ]; then
    # The sharded reduce must actually have run through the worker processes.
    jq -e '.nodes | map(select(startswith("aggworker/"))) | length >= 1' "${BEST}" >/dev/null \
        || die "sharded run but no aggworker process in the trace nodes $(jq -c '.nodes' "${BEST}")"
fi

kill "${LEADER_PID}" 2>/dev/null || true

# --- flight recorder and metric families -------------------------------------
say "driving one HTTP selection for the flight recorder"
CID=$(curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums" \
    -d '{"dataset":"Rice","rows":120,"parties":3,"scheme":"plain"}' \
    | jq -r '.id')
[ -n "${CID}" ] && [ "${CID}" != "null" ] || die "consortium creation failed"
curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums/${CID}/select" \
    -d '{"count":2,"k":4,"numQueries":6,"seed":1}' >/dev/null || die "HTTP selection failed"
SLOW_COUNT=$(curl -sf "http://${SERVE_ADDR}/v1/slow" | jq '.count')
[ "${SLOW_COUNT}" -ge 1 ] || die "/v1/slow is empty after a selection"
say "/v1/slow retains ${SLOW_COUNT} event(s)"

# --- membership churn over HTTP ----------------------------------------------
# Join a participant in place, select, leave it again, and require the
# post-churn selection to match the pre-churn one bit for bit: the roster
# returned to its original membership, so online churn must be invisible to
# the answer. The bogus-index removal must 404 without disturbing the roster.
say "membership churn probe: join, select, leave on consortium ${CID}"
PRE_SEL=$(curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums/${CID}/select" \
    -d '{"count":2,"k":4,"numQueries":6,"seed":1}' | jq -c '.selected')
JOIN=$(curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums/${CID}/participants" \
    -d '{"cloneOf":0,"noise":0.05,"seed":7}') || die "participant join failed"
JOIN_NAME=$(echo "${JOIN}" | jq -r '.name')
JOIN_PARTIES=$(echo "${JOIN}" | jq '.parties')
[ "${JOIN_PARTIES}" -eq 4 ] || die "join left ${JOIN_PARTIES} parties, want 4"
curl -sf "http://${SERVE_ADDR}/v1/consortiums/${CID}" \
    | jq -e --arg n "${JOIN_NAME}" '.partyNames | index($n) != null' >/dev/null \
    || die "joined participant ${JOIN_NAME} missing from partyNames"
curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums/${CID}/select" \
    -d '{"count":2,"k":4,"numQueries":6,"seed":1}' >/dev/null \
    || die "post-join selection failed"
BOGUS_CODE=$(curl -s -o /dev/null -w '%{http_code}' \
    -X DELETE "http://${SERVE_ADDR}/v1/consortiums/${CID}/participants/9")
[ "${BOGUS_CODE}" = "404" ] || die "removing unknown participant got HTTP ${BOGUS_CODE}, want 404"
LEAVE_PARTIES=$(curl -sf -X DELETE "http://${SERVE_ADDR}/v1/consortiums/${CID}/participants/3" \
    | jq '.parties') || die "participant leave failed"
[ "${LEAVE_PARTIES}" -eq 3 ] || die "leave left ${LEAVE_PARTIES} parties, want 3"
POST_SEL=$(curl -sf -X POST "http://${SERVE_ADDR}/v1/consortiums/${CID}/select" \
    -d '{"count":2,"k":4,"numQueries":6,"seed":1}' | jq -c '.selected')
[ "${POST_SEL}" = "${PRE_SEL}" ] || die "selection changed across join+leave churn: ${PRE_SEL} -> ${POST_SEL}"
say "churn probe: roster 3 -> 4 -> 3, selection stable at ${POST_SEL}"

METRICS="${WORK}/metrics.txt"
curl -sf "http://${SERVE_ADDR}/metrics" > "${METRICS}" || die "collector /metrics scrape failed"
for family in vfps_go_goroutines vfps_go_heap_alloc_bytes vfps_go_gc_pause_seconds_total; do
    grep -q "^# TYPE ${family} " "${METRICS}" || die "/metrics missing runtime family ${family}"
done
grep -q '^# HELP vfps_transport_errors_total .*by kind' "${METRICS}" \
    || die "transport error counter lost its kind label documentation"
for family in vfps_admission_admitted_total vfps_admission_rejected_total vfps_admission_queue_depth; do
    grep -q "^# TYPE ${family} " "${METRICS}" || die "/metrics missing admission family ${family}"
done
curl -sf "http://${AGG_OBS}/metrics" > "${WORK}/agg_metrics.txt" \
    || die "aggserver /metrics scrape failed"
grep -q '^# TYPE vfps_go_goroutines ' "${WORK}/agg_metrics.txt" \
    || die "aggserver obs listener missing runtime metrics"
for family in vfps_delta_cache_hits_total vfps_delta_cache_misses_total; do
    grep -q "^# TYPE ${family} " "${WORK}/agg_metrics.txt" \
        || die "aggserver /metrics missing delta-cache family ${family}"
done
if [ "${SHARDS}" -ge 2 ]; then
    grep -q '^# TYPE vfps_shard_retries_total ' "${WORK}/agg_metrics.txt" \
        || die "sharded aggserver /metrics missing vfps_shard_retries_total"
fi
if [ "${ROUNDS}" -gt 1 ]; then
    # Repeat rounds rerun the identical query set, so the receive side of the
    # party payloads must have recorded real delta-cache hits. Sharded runs
    # move that receive side from the aggserver to the shard workers.
    if [ "${SHARDS}" -ge 2 ]; then
        HITS=0
        for obs in "${WORKER_OBS[@]}"; do
            curl -sf "http://${obs}/metrics" > "${WORK}/worker_metrics.txt" \
                || die "aggworker /metrics scrape failed (${obs})"
            if grep -q '^vfps_delta_cache_hits_total{.*} [1-9]' "${WORK}/worker_metrics.txt"; then
                HITS=1
            fi
        done
        [ "${HITS}" -eq 1 ] || die "no delta-cache hits on any shard worker across ${ROUNDS} repeat rounds"
    else
        grep -q '^vfps_delta_cache_hits_total{.*} [1-9]' "${WORK}/agg_metrics.txt" \
            || die "no delta-cache hits recorded across ${ROUNDS} repeat rounds"
    fi
fi
curl -sf "http://${PARTY_OBS[0]}/metrics" > "${WORK}/party_metrics.txt" \
    || die "party obs /metrics scrape failed"
grep -q '^vfps_he_pack_slots{.*} [1-9]' "${WORK}/party_metrics.txt" \
    || die "party recorded no pack-slot geometry despite -pack"

# --- multi-tenant load arm ----------------------------------------------------
# An admission-controlled vfpsserve multiplexes NCONS sharded consortiums.
# Phase 1 runs the selections sequentially, phase 2 runs the same number
# concurrently (one in flight per consortium — the per-consortium run lock
# serializes deeper stacking anyway); the speedup and the concurrent p99 are
# gated.
say "multi-tenant arm: ${NCONS} consortiums x ${MT_ROUNDS} rounds on ${MT_ADDR} (speedup floor ${MIN_MT_SPEEDUP}, ${CORES} core(s))"
"${WORK}/vfpsserve" -addr "${MT_ADDR}" -max-concurrent 4 -queue-depth 8 \
    >"${WORK}/mt_serve.log" 2>&1 &
PIDS+=($!)
wait_tcp "${MT_ADDR}" || die "multi-tenant vfpsserve did not come up"

MT_CIDS=()
for i in $(seq 1 "${NCONS}"); do
    cid=$(curl -sf -X POST "http://${MT_ADDR}/v1/consortiums" \
        -d "{\"dataset\":\"Rice\",\"rows\":${ROWS},\"parties\":4,\"scheme\":\"plain\",\"shardWorkers\":${SHARD_WORKERS}}" \
        | jq -r '.id')
    [ -n "${cid}" ] && [ "${cid}" != "null" ] || die "multi-tenant consortium ${i} creation failed"
    MT_CIDS+=("${cid}")
done
SHARDED_WORKERS=$(curl -sf "http://${MT_ADDR}/v1/consortiums/${MT_CIDS[0]}" | jq '.shardWorkers')
if [ "${SHARD_WORKERS}" -ge 2 ]; then
    [ "${SHARDED_WORKERS}" -ge 2 ] || die "multi-tenant consortium reports ${SHARDED_WORKERS} shard workers, want >= 2"
fi

mt_select() { # cid latency-file
    curl -sf -o /dev/null -w '%{time_total}\n' -H 'X-Tenant: load' \
        -X POST "http://${MT_ADDR}/v1/consortiums/$1/select" \
        -d '{"count":2,"k":4,"numQueries":6,"seed":1}' > "$2" \
        || die "multi-tenant selection on $1 failed"
}

now() { date +%s.%N; }

SEQ_START=$(now)
for r in $(seq 1 "${MT_ROUNDS}"); do
    for i in $(seq 0 $((NCONS - 1))); do
        mt_select "${MT_CIDS[i]}" "${WORK}/seq_${r}_${i}.t"
    done
done
SEQ_WALL=$(jq -n --argjson a "$(now)" --argjson b "${SEQ_START}" '$a - $b')

CONC_START=$(now)
for r in $(seq 1 "${MT_ROUNDS}"); do
    CURL_PIDS=()
    for i in $(seq 0 $((NCONS - 1))); do
        mt_select "${MT_CIDS[i]}" "${WORK}/conc_${r}_${i}.t" &
        CURL_PIDS+=($!)
    done
    for pid in "${CURL_PIDS[@]}"; do
        wait "${pid}" || die "concurrent multi-tenant selection failed"
    done
done
CONC_WALL=$(jq -n --argjson a "$(now)" --argjson b "${CONC_START}" '$a - $b')

MT_TOTAL=$((NCONS * MT_ROUNDS))
read -r SEQ_QPS CONC_QPS MT_SPEEDUP <<EOF
$(jq -n --argjson n "${MT_TOTAL}" --argjson sw "${SEQ_WALL}" --argjson cw "${CONC_WALL}" \
    '[$n / $sw, $n / $cw, $sw / $cw] | map(. * 1000 | round / 1000) | @tsv' -r)
EOF
MT_P99=$(cat "${WORK}"/conc_*.t | jq -s 'sort | .[((length - 1) * 0.99 | round)] * 1000 | (. * 1000 | round / 1000)')
say "multi-tenant: sequential ${SEQ_QPS} sel/s, concurrent ${CONC_QPS} sel/s (speedup ${MT_SPEEDUP}x), concurrent p99 ${MT_P99}ms"
jq -n -e --argjson s "${MT_SPEEDUP}" --argjson min "${MIN_MT_SPEEDUP}" '$s >= $min' >/dev/null \
    || die "multi-tenant speedup ${MT_SPEEDUP}x below floor SOAK_MIN_MT_SPEEDUP=${MIN_MT_SPEEDUP}x"
jq -n -e --argjson p "${MT_P99}" --argjson lim "${MT_P99_MS}" '$p <= $lim' >/dev/null \
    || die "multi-tenant concurrent p99 ${MT_P99}ms exceeds gate SOAK_MT_P99_MS=${MT_P99_MS}ms"

MT_METRICS="${WORK}/mt_metrics.txt"
curl -sf "http://${MT_ADDR}/metrics" > "${MT_METRICS}" || die "multi-tenant /metrics scrape failed"
ADMITTED=$(awk '/^vfps_admission_admitted_total / {print $2}' "${MT_METRICS}")
[ -n "${ADMITTED}" ] && [ "${ADMITTED}" -ge $((2 * MT_TOTAL)) ] \
    || die "admission admitted ${ADMITTED:-0}, want >= $((2 * MT_TOTAL))"

# --- admission rejection probe ------------------------------------------------
# A dedicated server with a 1-op tenant HE budget: the first selection is
# admitted and overspends the budget, the second must be rejected with 429.
say "admission probe: 1-op tenant HE budget on ${PROBE_ADDR}"
"${WORK}/vfpsserve" -addr "${PROBE_ADDR}" -tenant-he-budget 1 \
    >"${WORK}/probe_serve.log" 2>&1 &
PIDS+=($!)
wait_tcp "${PROBE_ADDR}" || die "probe vfpsserve did not come up"
PCID=$(curl -sf -X POST "http://${PROBE_ADDR}/v1/consortiums" \
    -d '{"dataset":"Rice","rows":80,"parties":3,"scheme":"plain"}' | jq -r '.id')
curl -sf -X POST "http://${PROBE_ADDR}/v1/consortiums/${PCID}/select" \
    -H 'X-Tenant: probe' -d '{"count":2,"k":4,"numQueries":4,"seed":1}' >/dev/null \
    || die "probe selection within budget failed"
REJ_CODE=$(curl -s -o "${WORK}/probe_reject.json" -w '%{http_code}' \
    -X POST "http://${PROBE_ADDR}/v1/consortiums/${PCID}/select" \
    -H 'X-Tenant: probe' -d '{"count":2,"k":4,"numQueries":4,"seed":1}')
[ "${REJ_CODE}" = "429" ] || die "over-budget probe got HTTP ${REJ_CODE}, want 429 ($(cat "${WORK}/probe_reject.json"))"
curl -sf "http://${PROBE_ADDR}/metrics" > "${WORK}/probe_metrics.txt" \
    || die "probe /metrics scrape failed"
REJECTED=$(awk '/^vfps_admission_rejected_total\{reason="tenant-budget"\} / {print $2}' "${WORK}/probe_metrics.txt")
[ -n "${REJECTED}" ] && [ "${REJECTED}" -ge 1 ] \
    || die "rejected counter missing tenant-budget rejection"
say "admission probe: budget rejection recorded (${REJECTED} rejection(s))"

# --- summary + gate-key contract ---------------------------------------------
jq -n \
    --argjson queries "${TOTAL}" --argjson qps "${QPS}" \
    --argjson p50 "${P50MS}" --argjson p99 "${P99MS}" \
    --argjson procs "${PROCESSES}" --arg trace "${TRACE_ID}" \
    --argjson slow "${SLOW_COUNT}" --argjson shards "${SHARDS}" \
    --argjson mtsels "${MT_TOTAL}" --argjson mtseq "${SEQ_QPS}" \
    --argjson mtconc "${CONC_QPS}" --argjson mtspeed "${MT_SPEEDUP}" \
    --argjson mtfloor "${MIN_MT_SPEEDUP}" --argjson mtp99 "${MT_P99}" \
    --argjson admitted "${ADMITTED}" --argjson rejected "${REJECTED}" \
    '{soak: {queries: $queries, qps: $qps, p50Ms: $p50, p99Ms: $p99,
             processes: $procs, traceId: $trace, slowEvents: $slow,
             shardWorkers: $shards, mtSelections: $mtsels,
             mtSeqQps: $mtseq, mtConcQps: $mtconc,
             mtSpeedup: $mtspeed, mtSpeedupFloor: $mtfloor, mtP99Ms: $mtp99,
             admitted: $admitted, rejected: $rejected}}' > "${OUT}"
say "summary written to ${OUT}"
./scripts/bench_compare.sh "${OUT}"

say "OK"
