#!/usr/bin/env bash
# bench_compare.sh — gate the hot-path benchmarks against regressions.
#
# Usage:
#   scripts/bench_compare.sh [candidate.json] [baseline.json]
#
# The candidate JSON's top-level key picks the gate set. A `.packed` result
# (default BENCH_packed.json, freshly produced by `make bench-packed`) must
# uphold the absolute contracts of the packed pipeline regardless of machine:
#
#   * every end-to-end selection matches the scalar run exactly,
#   * slot packing cuts ciphertext bytes by at least MIN_BYTE_REDUCTION,
#   * CRT decryption is at least MIN_CRT_SPEEDUP over the λ/μ path.
#
# A `.wire` result (BENCH_wire.json, from `make bench-wire`) must show:
#
#   * every gob-vs-binary selection pair matching exactly,
#   * binary total bytes strictly below gob on every pair,
#   * Fagin framing (non-ciphertext) bytes cut by MIN_WIRE_FRAMING_REDUCTION.
#
# A `.encrypt` result (BENCH_encrypt.json, from `make bench-encrypt`) must
# show:
#
#   * fixed-base windowed randomizer production at least MIN_ENCRYPT_SPEEDUP
#     over the classic inline path (the party-side encryption throughput
#     contract),
#   * every end-to-end selection — windowed pools, shared PoolSet — matching
#     the classic-sampling baseline exactly.
#
# When a baseline (default: the checked-in BENCH_packed.json from git HEAD)
# is available and distinct from the candidate, the packed end-to-end wall
# clocks must also stay within TOLERANCE of it. Wall clocks are machine
# dependent, so the relative gate only fires when the baseline was produced
# on a comparable machine; the absolute gates always fire.
set -euo pipefail

CANDIDATE=${1:-BENCH_packed.json}
BASELINE=${2:-}
MIN_CRT_SPEEDUP=${MIN_CRT_SPEEDUP:-3.0}
MIN_BYTE_REDUCTION=${MIN_BYTE_REDUCTION:-4.0}
MIN_WIRE_FRAMING_REDUCTION=${MIN_WIRE_FRAMING_REDUCTION:-2.0}
MIN_ENCRYPT_SPEEDUP=${MIN_ENCRYPT_SPEEDUP:-2.0}
TOLERANCE=${TOLERANCE:-1.5}

command -v jq >/dev/null || { echo "bench_compare: jq not found" >&2; exit 1; }
[ -f "$CANDIDATE" ] || { echo "bench_compare: candidate $CANDIDATE not found (run make bench-packed / bench-wire)" >&2; exit 1; }

fail=0
say() { echo "bench_compare: $*"; }
bad() { echo "bench_compare: FAIL: $*" >&2; fail=1; }

# --- wire codec gates --------------------------------------------------------
if jq -e '.wire' "$CANDIDATE" >/dev/null 2>&1; then
  while IFS=$'\t' read -r variant packed match; do
    if [ "$match" = "true" ]; then
      say "selection $variant packed=$packed: binary codec selected the identical set"
    else
      bad "selection $variant packed=$packed: binary codec selected a DIFFERENT set"
    fi
  done < <(jq -r '.wire.EndToEnd[] | [.Variant, (.Packed|tostring), (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")

  while IFS=$'\t' read -r variant packed gob binary; do
    if [ "$(jq -n --argjson g "$gob" --argjson b "$binary" '$b < $g')" = "true" ]; then
      say "selection $variant packed=$packed: binary total $binary B < gob $gob B"
    else
      bad "selection $variant packed=$packed: binary sent $binary total bytes, gob $gob"
    fi
  done < <(jq -r '.wire.EndToEnd[] | [.Variant, (.Packed|tostring), (.GobBytes|tostring), (.BinaryBytes|tostring)] | @tsv' "$CANDIDATE")

  while IFS=$'\t' read -r packed red; do
    if [ "$(jq -n --argjson r "$red" --argjson min "$MIN_WIRE_FRAMING_REDUCTION" '$r >= $min')" = "true" ]; then
      say "fagin packed=$packed: framing reduction ${red}x (floor ${MIN_WIRE_FRAMING_REDUCTION}x)"
    else
      bad "fagin packed=$packed: framing reduction ${red}x below floor ${MIN_WIRE_FRAMING_REDUCTION}x"
    fi
  done < <(jq -r '.wire.EndToEnd[] | select(.Variant == "fagin") | [(.Packed|tostring), (.FramingReduction|tostring)] | @tsv' "$CANDIDATE")
fi

# --- encryption hot-path gates -----------------------------------------------
if jq -e '.encrypt' "$CANDIDATE" >/dev/null 2>&1; then
  wsp=$(jq -r '.encrypt.Micro.WindowedSpeedup' "$CANDIDATE")
  csp=$(jq -r '.encrypt.Micro.CRTWindowedSpeedup' "$CANDIDATE")
  jq -e --argjson min "$MIN_ENCRYPT_SPEEDUP" '.encrypt.Micro.WindowedSpeedup >= $min' "$CANDIDATE" >/dev/null \
    && say "windowed encrypt speedup ${wsp}x (floor ${MIN_ENCRYPT_SPEEDUP}x; CRT+window ${csp}x)" \
    || bad "windowed encrypt speedup ${wsp}x below floor ${MIN_ENCRYPT_SPEEDUP}x"

  while IFS=$'\t' read -r variant mode match; do
    if [ "$match" = "true" ]; then
      say "selection $variant/$mode: selected the identical set"
    else
      bad "selection $variant/$mode: selected a DIFFERENT set than classic sampling"
    fi
  done < <(jq -r '.encrypt.EndToEnd[] | [.Variant, .Mode, (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")
fi

if ! jq -e '.packed' "$CANDIDATE" >/dev/null 2>&1; then
  if [ "$fail" -ne 0 ]; then
    echo "bench_compare: REGRESSION DETECTED" >&2
    exit 1
  fi
  say "all gates passed"
  exit 0
fi

# --- absolute gates on the candidate ----------------------------------------
crt=$(jq -r '.packed.CRT.Speedup' "$CANDIDATE")
bytered=$(jq -r '.packed.Wire.ByteReduction' "$CANDIDATE")
packf=$(jq -r '.packed.Wire.PackFactor' "$CANDIDATE")

jq -e --argjson min "$MIN_CRT_SPEEDUP" '.packed.CRT.Speedup >= $min' "$CANDIDATE" >/dev/null \
  && say "CRT decrypt speedup ${crt}x (floor ${MIN_CRT_SPEEDUP}x)" \
  || bad "CRT decrypt speedup ${crt}x below floor ${MIN_CRT_SPEEDUP}x"

jq -e --argjson min "$MIN_BYTE_REDUCTION" '.packed.Wire.ByteReduction >= $min' "$CANDIDATE" >/dev/null \
  && say "ciphertext byte reduction ${bytered}x at pack factor ${packf} (floor ${MIN_BYTE_REDUCTION}x)" \
  || bad "byte reduction ${bytered}x below floor ${MIN_BYTE_REDUCTION}x"

while IFS=$'\t' read -r variant match; do
  if [ "$match" = "true" ]; then
    say "selection $variant: packed run selected the identical set"
  else
    bad "selection $variant: packed run selected a DIFFERENT set"
  fi
done < <(jq -r '.packed.EndToEnd[] | [.Variant, (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")

while IFS=$'\t' read -r variant scalar packed; do
  if jq -n --argjson s "$scalar" --argjson p "$packed" '$p < $s' >/dev/null 2>&1 \
     && [ "$(jq -n --argjson s "$scalar" --argjson p "$packed" '$p < $s')" = "true" ]; then
    say "selection $variant: packed bytes $packed < scalar bytes $scalar"
  else
    bad "selection $variant: packed run sent $packed bytes, scalar $scalar"
  fi
done < <(jq -r '.packed.EndToEnd[] | [.Variant, (.BytesScalar|tostring), (.BytesPacked|tostring)] | @tsv' "$CANDIDATE")

# --- relative gate against the baseline -------------------------------------
cleanup=""
if [ -z "$BASELINE" ]; then
  # Default baseline: the checked-in BENCH_packed.json at git HEAD.
  if git cat-file -e "HEAD:BENCH_packed.json" 2>/dev/null; then
    BASELINE=$(mktemp)
    cleanup=$BASELINE
    git show HEAD:BENCH_packed.json > "$BASELINE"
  fi
fi
if [ -n "$BASELINE" ] && [ -f "$BASELINE" ] && ! cmp -s "$CANDIDATE" "$BASELINE"; then
  while IFS=$'\t' read -r variant cand base; do
    limit=$(jq -n --argjson b "$base" --argjson t "$TOLERANCE" '$b * $t')
    if [ "$(jq -n --argjson c "$cand" --argjson l "$limit" '$c <= $l')" = "true" ]; then
      say "selection $variant: packed wall clock ${cand}s within ${TOLERANCE}x of baseline ${base}s"
    else
      bad "selection $variant: packed wall clock ${cand}s regressed past ${TOLERANCE}x baseline ${base}s"
    fi
  done < <(join -t $'\t' \
      <(jq -r '.packed.EndToEnd[] | [.Variant, (.PackedSeconds|tostring)] | @tsv' "$CANDIDATE" | sort) \
      <(jq -r '.packed.EndToEnd[] | [.Variant, (.PackedSeconds|tostring)] | @tsv' "$BASELINE" | sort))
else
  say "no distinct baseline — skipping relative wall-clock gate"
fi
[ -n "$cleanup" ] && rm -f "$cleanup"

if [ "$fail" -ne 0 ]; then
  echo "bench_compare: REGRESSION DETECTED" >&2
  exit 1
fi
say "all gates passed"
