#!/usr/bin/env bash
# bench_compare.sh — gate the hot-path benchmarks against regressions.
#
# Usage:
#   scripts/bench_compare.sh [candidate.json] [baseline.json]
#
# The candidate JSON's top-level key picks the gate set; a candidate with no
# recognized top-level key (.packed / .wire / .encrypt / .payload / .churn /
# .soak), and any recognized section missing a key the gates read, is itself a
# hard failure — a renamed or dropped field must never silently pass. A `.packed` result (default
# BENCH_packed.json, freshly produced by `make bench-packed`) must uphold the
# absolute contracts of the packed pipeline regardless of machine:
#
#   * every end-to-end selection matches the scalar run exactly,
#   * slot packing cuts ciphertext bytes by at least MIN_BYTE_REDUCTION,
#   * CRT decryption is at least MIN_CRT_SPEEDUP over the λ/μ path.
#
# A `.wire` result (BENCH_wire.json, from `make bench-wire`) must show:
#
#   * every gob-vs-binary selection pair matching exactly,
#   * binary total bytes strictly below gob on every pair,
#   * Fagin framing (non-ciphertext) bytes cut by MIN_WIRE_FRAMING_REDUCTION.
#
# A `.encrypt` result (BENCH_encrypt.json, from `make bench-encrypt`) must
# show:
#
#   * fixed-base windowed randomizer production at least MIN_ENCRYPT_SPEEDUP
#     over the classic inline path (the party-side encryption throughput
#     contract),
#   * the Montgomery kernel at least MIN_MONT_SPEEDUP over pure math/big on
#     the modmul-bound arms (windowed encryption, ciphertext summation), and
#     no worse than MIN_MONT_DECRYPT_RATIO on the modexp-bound CRT decrypt
#     arm (big.Int.Exp already runs Montgomery internally, so parity — not a
#     speedup — is the contract there; see DESIGN.md §12),
#   * every end-to-end selection — windowed pools, shared PoolSet, and the
#     mont-off arm proving both arithmetic backends select identically —
#     matching the classic-sampling baseline exactly.
#
# A `.payload` result (BENCH_payload.json, from `make bench-payload`) must
# show:
#
#   * every arm — static, adaptive, chunked, delta, full, and the
#     mixed-codec arm that falls back to legacy whole-blob framing on the
#     gob link — selecting the identical participant set,
#   * the fully optimized arm (adaptive pack + chunked streaming + delta
#     cache) cutting steady-state ciphertext payload bytes by at least
#     MIN_PAYLOAD_REDUCTION over static packing,
#   * delta-cache hits actually recorded on the delta arms.
#
# A `.churn` result (BENCH_churn.json, from `make bench-churn`) must show:
#
#   * the in-place join paying at least MIN_CHURN_HE_REDUCTION fewer
#     encryptions than a cold rebuild at the same final membership (the
#     delta cache spares every survivor; the base roster is floored at 6),
#   * every churn arm — join, leave, roster revisit, speculative TA —
#     selecting bit-identically to its cold or serial twin,
#   * the roster revisit through the set-keyed similarity cache paying
#     exactly 0 HE operations.
#
# A `.soak` result (SOAK_summary.json, from `make soak`) must carry the full
# key set the soak gates computed — queries, qps, p50Ms, p99Ms, processes,
# plus the multi-tenant arm's shardWorkers, mtSelections, mtSeqQps,
# mtConcQps, mtSpeedup, mtSpeedupFloor, mtP99Ms, admitted, rejected — plus
# sanity floors (the latency/throughput gates themselves fire inside
# scripts/soak.sh, where the raw query log lives):
#
#   * at least one query was driven and throughput is positive,
#   * the distinguished trace spans at least 3 distinct processes,
#   * the multi-tenant concurrent/sequential speedup meets its recorded
#     floor, and that floor is itself >= 0.9 (so an override can tune the
#     gate for the machine's core count but never disable it),
#   * admission accounting is live: every load selection admitted and the
#     budget probe rejected at least once.
#
# When a baseline (default: the checked-in BENCH_packed.json from git HEAD)
# is available and distinct from the candidate, the packed end-to-end wall
# clocks must also stay within TOLERANCE of it. Wall clocks are machine
# dependent, so the relative gate only fires when the baseline was produced
# on a comparable machine; the absolute gates always fire.
set -euo pipefail

CANDIDATE=${1:-BENCH_packed.json}
BASELINE=${2:-}
MIN_CRT_SPEEDUP=${MIN_CRT_SPEEDUP:-3.0}
MIN_BYTE_REDUCTION=${MIN_BYTE_REDUCTION:-4.0}
MIN_WIRE_FRAMING_REDUCTION=${MIN_WIRE_FRAMING_REDUCTION:-2.0}
MIN_ENCRYPT_SPEEDUP=${MIN_ENCRYPT_SPEEDUP:-2.0}
MIN_MONT_SPEEDUP=${MIN_MONT_SPEEDUP:-1.5}
MIN_MONT_DECRYPT_RATIO=${MIN_MONT_DECRYPT_RATIO:-0.9}
MIN_PAYLOAD_REDUCTION=${MIN_PAYLOAD_REDUCTION:-3.0}
MIN_CHURN_HE_REDUCTION=${MIN_CHURN_HE_REDUCTION:-2.0}
TOLERANCE=${TOLERANCE:-1.5}

command -v jq >/dev/null || { echo "bench_compare: jq not found" >&2; exit 1; }
[ -f "$CANDIDATE" ] || { echo "bench_compare: candidate $CANDIDATE not found (run make bench-packed / bench-wire / bench-encrypt)" >&2; exit 1; }

fail=0
say() { echo "bench_compare: $*"; }
bad() { echo "bench_compare: FAIL: $*" >&2; fail=1; }

# require <jq-expr> <description> — assert the candidate carries a key the
# gates below read. jq -e exits non-zero on null/false/missing, so a renamed
# field, an empty result array or a dropped arm fails loudly instead of
# letting its gate silently evaporate. Returns non-zero so callers can skip
# the dependent gate and avoid a cascade of jq errors.
require() {
  if ! jq -e "$1" "$CANDIDATE" >/dev/null 2>&1; then
    bad "candidate is missing expected data: $2 (jq: $1)"
    return 1
  fi
}

recognized=0

# --- wire codec gates --------------------------------------------------------
if jq -e '.wire' "$CANDIDATE" >/dev/null 2>&1; then
  recognized=1
  if require '.wire.EndToEnd | length > 0' "wire end-to-end rows"; then
    while IFS=$'\t' read -r variant packed match; do
      if [ "$match" = "true" ]; then
        say "selection $variant packed=$packed: binary codec selected the identical set"
      else
        bad "selection $variant packed=$packed: binary codec selected a DIFFERENT set"
      fi
    done < <(jq -r '.wire.EndToEnd[] | [.Variant, (.Packed|tostring), (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")

    while IFS=$'\t' read -r variant packed gob binary; do
      if [ "$(jq -n --argjson g "$gob" --argjson b "$binary" '$b < $g')" = "true" ]; then
        say "selection $variant packed=$packed: binary total $binary B < gob $gob B"
      else
        bad "selection $variant packed=$packed: binary sent $binary total bytes, gob $gob"
      fi
    done < <(jq -r '.wire.EndToEnd[] | [.Variant, (.Packed|tostring), (.GobBytes|tostring), (.BinaryBytes|tostring)] | @tsv' "$CANDIDATE")

    require '[.wire.EndToEnd[] | select(.Variant == "fagin")] | length > 0' "fagin wire rows (framing gate)" && \
    while IFS=$'\t' read -r packed red; do
      if [ "$(jq -n --argjson r "$red" --argjson min "$MIN_WIRE_FRAMING_REDUCTION" '$r >= $min')" = "true" ]; then
        say "fagin packed=$packed: framing reduction ${red}x (floor ${MIN_WIRE_FRAMING_REDUCTION}x)"
      else
        bad "fagin packed=$packed: framing reduction ${red}x below floor ${MIN_WIRE_FRAMING_REDUCTION}x"
      fi
    done < <(jq -r '.wire.EndToEnd[] | select(.Variant == "fagin") | [(.Packed|tostring), (.FramingReduction|tostring)] | @tsv' "$CANDIDATE")
  fi
fi

# --- encryption hot-path gates -----------------------------------------------
if jq -e '.encrypt' "$CANDIDATE" >/dev/null 2>&1; then
  recognized=1
  if require '.encrypt.Micro.WindowedSpeedup' "windowed encrypt speedup"; then
    wsp=$(jq -r '.encrypt.Micro.WindowedSpeedup' "$CANDIDATE")
    csp=$(jq -r '.encrypt.Micro.CRTWindowedSpeedup // "?"' "$CANDIDATE")
    jq -e --argjson min "$MIN_ENCRYPT_SPEEDUP" '.encrypt.Micro.WindowedSpeedup >= $min' "$CANDIDATE" >/dev/null \
      && say "windowed encrypt speedup ${wsp}x (floor ${MIN_ENCRYPT_SPEEDUP}x; CRT+window ${csp}x)" \
      || bad "windowed encrypt speedup ${wsp}x below floor ${MIN_ENCRYPT_SPEEDUP}x"
  fi

  # Montgomery kernel A/B: ≥ MIN_MONT_SPEEDUP on the modmul-bound arms,
  # ≥ MIN_MONT_DECRYPT_RATIO (parity) on the modexp-bound decrypt arm.
  for arm in MontWindowedSpeedup MontSumSpeedup; do
    if require ".encrypt.Micro.$arm" "Montgomery A/B arm $arm"; then
      v=$(jq -r ".encrypt.Micro.$arm" "$CANDIDATE")
      jq -e --argjson min "$MIN_MONT_SPEEDUP" ".encrypt.Micro.$arm >= \$min" "$CANDIDATE" >/dev/null \
        && say "mont kernel $arm ${v}x (floor ${MIN_MONT_SPEEDUP}x)" \
        || bad "mont kernel $arm ${v}x below floor ${MIN_MONT_SPEEDUP}x"
    fi
  done
  if require '.encrypt.Micro.MontDecryptRatio' "Montgomery A/B arm MontDecryptRatio"; then
    v=$(jq -r '.encrypt.Micro.MontDecryptRatio' "$CANDIDATE")
    jq -e --argjson min "$MIN_MONT_DECRYPT_RATIO" '.encrypt.Micro.MontDecryptRatio >= $min' "$CANDIDATE" >/dev/null \
      && say "mont kernel CRT decrypt ratio ${v}x (parity floor ${MIN_MONT_DECRYPT_RATIO}x)" \
      || bad "mont kernel CRT decrypt ratio ${v}x below parity floor ${MIN_MONT_DECRYPT_RATIO}x"
  fi

  if require '.encrypt.EndToEnd | length > 0' "encrypt end-to-end rows"; then
    require '[.encrypt.EndToEnd[] | select(.Mode == "mont-off")] | length > 0' \
      "mont-off end-to-end arm (backend selection-identity proof)" || true
    while IFS=$'\t' read -r variant mode match; do
      if [ "$match" = "true" ]; then
        say "selection $variant/$mode: selected the identical set"
      else
        bad "selection $variant/$mode: selected a DIFFERENT set than classic sampling"
      fi
    done < <(jq -r '.encrypt.EndToEnd[] | [.Variant, .Mode, (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")
  fi
fi

# --- ciphertext payload gates ------------------------------------------------
if jq -e '.payload' "$CANDIDATE" >/dev/null 2>&1; then
  recognized=1
  if require '.payload.Arms | length > 0' "payload benchmark arms"; then
    while IFS=$'\t' read -r arm match; do
      if [ "$match" = "true" ]; then
        say "payload arm $arm: selected the identical set"
      else
        bad "payload arm $arm: selected a DIFFERENT set than static packing"
      fi
    done < <(jq -r '.payload.Arms[] | [.Name, (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")

    # The mixed-codec fallback arm must be present — dropping it would turn
    # the legacy-framing compatibility proof into a silent no-op.
    require '[.payload.Arms[] | select(.MixedCodec == true)] | length > 0' \
      "mixed-codec payload arm (legacy whole-blob framing fallback)" || true

    # Delta-cache arms must actually hit the cache; an optimization that
    # never engages would still "match" trivially.
    while IFS=$'\t' read -r arm hits; do
      if [ "$hits" -gt 0 ]; then
        say "payload arm $arm: $hits delta-cache hits in the steady state"
      else
        bad "payload arm $arm: delta cache enabled but zero hits recorded"
      fi
    done < <(jq -r '.payload.Arms[] | select(.Delta == true) | [.Name, (.CacheHits|tostring)] | @tsv' "$CANDIDATE")
  fi

  if require '.payload.Reduction' "payload steady-state reduction"; then
    red=$(jq -r '.payload.Reduction' "$CANDIDATE")
    total=$(jq -r '.payload.TotalReduction // "?"' "$CANDIDATE")
    jq -e --argjson min "$MIN_PAYLOAD_REDUCTION" '.payload.Reduction >= $min' "$CANDIDATE" >/dev/null \
      && say "payload steady-state reduction ${red}x (floor ${MIN_PAYLOAD_REDUCTION}x; all-rounds ${total}x)" \
      || bad "payload steady-state reduction ${red}x below floor ${MIN_PAYLOAD_REDUCTION}x"
  fi
fi

# --- membership churn gates --------------------------------------------------
if jq -e '.churn' "$CANDIDATE" >/dev/null 2>&1; then
  recognized=1
  for key in ColdEncryptions JoinEncryptions HEReduction BaseParties; do
    require ".churn.${key}" "churn key ${key}" || true
  done
  if require '.churn.HEReduction' "churn HE-op reduction"; then
    red=$(jq -r '.churn.HEReduction' "$CANDIDATE")
    cold=$(jq -r '.churn.ColdEncryptions // "?"' "$CANDIDATE")
    joine=$(jq -r '.churn.JoinEncryptions // "?"' "$CANDIDATE")
    # The survivor-reuse contract only binds at non-trivial rosters; the
    # benchmark floors the base membership at 6, and the gate re-checks it so
    # a shrunken run can never pass trivially.
    jq -e '.churn.BaseParties >= 6' "$CANDIDATE" >/dev/null \
      || bad "churn base roster $(jq -r '.churn.BaseParties' "$CANDIDATE") below the 6-party floor"
    jq -e --argjson min "$MIN_CHURN_HE_REDUCTION" '.churn.HEReduction >= $min' "$CANDIDATE" >/dev/null \
      && say "incremental join cut encryptions ${red}x (cold $cold vs join $joine, floor ${MIN_CHURN_HE_REDUCTION}x)" \
      || bad "incremental join cut encryptions only ${red}x (cold $cold vs join $joine), floor ${MIN_CHURN_HE_REDUCTION}x"
  fi
  for arm in JoinMatch LeaveMatch RevisitMatch TAMatch; do
    if require ".churn.${arm}" "churn identity flag ${arm}"; then
      if [ "$(jq -r ".churn.${arm}" "$CANDIDATE")" = "true" ]; then
        say "churn arm ${arm%Match}: selected bit-identically to its cold/serial twin"
      else
        bad "churn arm ${arm%Match}: selected a DIFFERENT set than its cold/serial twin"
      fi
    fi
  done
  if require '.churn | has("RevisitHEOps")' "churn revisit HE-op count"; then
    ops=$(jq -r '.churn.RevisitHEOps' "$CANDIDATE")
    jq -e '.churn.RevisitHEOps == 0' "$CANDIDATE" >/dev/null \
      && say "roster revisit paid 0 HE ops through the set-keyed similarity cache" \
      || bad "roster revisit still paid $ops HE ops — the similarity cache did not engage"
  fi
  if require '.churn | has("TASpecWaste")' "speculative-TA waste counter"; then
    waste=$(jq -r '.churn.TASpecWaste' "$CANDIDATE")
    serial=$(jq -r '.churn.TASerialSeconds // "?"' "$CANDIDATE")
    spec=$(jq -r '.churn.TASpecSeconds // "?"' "$CANDIDATE")
    say "speculative TA: ${spec}s vs ${serial}s serial, $waste wasted decryptions surfaced in vfps_ta_speculative_waste_total"
  fi
fi

# --- soak summary gates ------------------------------------------------------
if jq -e '.soak' "$CANDIDATE" >/dev/null 2>&1; then
  recognized=1
  # Require every key the soak harness gates on, so a renamed summary field
  # can never turn the soak into a silent no-op.
  soak_ok=1
  for key in queries qps p50Ms p99Ms processes shardWorkers mtSelections \
             mtSeqQps mtConcQps mtSpeedup mtSpeedupFloor mtP99Ms admitted rejected; do
    require ".soak.${key}" "soak summary key ${key}" || soak_ok=0
  done
  if [ "$soak_ok" -eq 1 ]; then
    qn=$(jq -r '.soak.queries' "$CANDIDATE")
    qps=$(jq -r '.soak.qps' "$CANDIDATE")
    p50=$(jq -r '.soak.p50Ms' "$CANDIDATE")
    p99=$(jq -r '.soak.p99Ms' "$CANDIDATE")
    procs=$(jq -r '.soak.processes' "$CANDIDATE")
    jq -e '.soak.queries >= 1 and .soak.qps > 0' "$CANDIDATE" >/dev/null \
      && say "soak drove $qn queries at $qps q/s (p50 ${p50}ms, p99 ${p99}ms)" \
      || bad "soak summary shows no throughput ($qn queries at $qps q/s)"
    jq -e '.soak.processes >= 3' "$CANDIDATE" >/dev/null \
      && say "soak trace spans $procs distinct processes (floor 3)" \
      || bad "soak trace spans only $procs distinct processes, want >= 3"

    mtsels=$(jq -r '.soak.mtSelections' "$CANDIDATE")
    mtspeed=$(jq -r '.soak.mtSpeedup' "$CANDIDATE")
    mtfloor=$(jq -r '.soak.mtSpeedupFloor' "$CANDIDATE")
    mtp99=$(jq -r '.soak.mtP99Ms' "$CANDIDATE")
    admitted=$(jq -r '.soak.admitted' "$CANDIDATE")
    rejected=$(jq -r '.soak.rejected' "$CANDIDATE")
    jq -e '.soak.mtSelections >= 1 and .soak.mtConcQps > 0' "$CANDIDATE" >/dev/null \
      && say "multi-tenant arm drove $mtsels concurrent selections (p99 ${mtp99}ms)" \
      || bad "multi-tenant arm shows no concurrent throughput"
    # The floor itself is part of the contract: a per-machine override may
    # relax the core-scaled default, but never below break-even minus 10%.
    jq -e '.soak.mtSpeedupFloor >= 0.9' "$CANDIDATE" >/dev/null \
      || bad "multi-tenant speedup floor $mtfloor below 0.9 — the gate has been defeated"
    jq -e '.soak.mtSpeedup >= .soak.mtSpeedupFloor' "$CANDIDATE" >/dev/null \
      && say "multi-tenant speedup ${mtspeed}x meets its recorded floor ${mtfloor}x" \
      || bad "multi-tenant speedup ${mtspeed}x below its recorded floor ${mtfloor}x"
    jq -e '.soak.admitted >= .soak.mtSelections' "$CANDIDATE" >/dev/null \
      && say "admission admitted $admitted selections (>= $mtsels load selections)" \
      || bad "admission admitted only $admitted of $mtsels load selections"
    jq -e '.soak.rejected >= 1' "$CANDIDATE" >/dev/null \
      && say "admission budget probe recorded $rejected rejection(s)" \
      || bad "admission budget probe recorded no rejection"
  fi
fi

if ! jq -e '.packed' "$CANDIDATE" >/dev/null 2>&1; then
  if [ "$recognized" -eq 0 ]; then
    bad "candidate $CANDIDATE has no recognized top-level section (.packed / .wire / .encrypt / .payload / .churn / .soak)"
  fi
  if [ "$fail" -ne 0 ]; then
    echo "bench_compare: REGRESSION DETECTED" >&2
    exit 1
  fi
  say "all gates passed"
  exit 0
fi

# --- absolute gates on the candidate ----------------------------------------
if require '.packed.CRT.Speedup' "packed CRT speedup"; then
  crt=$(jq -r '.packed.CRT.Speedup' "$CANDIDATE")
  jq -e --argjson min "$MIN_CRT_SPEEDUP" '.packed.CRT.Speedup >= $min' "$CANDIDATE" >/dev/null \
    && say "CRT decrypt speedup ${crt}x (floor ${MIN_CRT_SPEEDUP}x)" \
    || bad "CRT decrypt speedup ${crt}x below floor ${MIN_CRT_SPEEDUP}x"
fi

if require '.packed.Wire.ByteReduction' "packed byte reduction"; then
  bytered=$(jq -r '.packed.Wire.ByteReduction' "$CANDIDATE")
  packf=$(jq -r '.packed.Wire.PackFactor // "?"' "$CANDIDATE")
  jq -e --argjson min "$MIN_BYTE_REDUCTION" '.packed.Wire.ByteReduction >= $min' "$CANDIDATE" >/dev/null \
    && say "ciphertext byte reduction ${bytered}x at pack factor ${packf} (floor ${MIN_BYTE_REDUCTION}x)" \
    || bad "byte reduction ${bytered}x below floor ${MIN_BYTE_REDUCTION}x"
fi

if require '.packed.EndToEnd | length > 0' "packed end-to-end rows"; then
  while IFS=$'\t' read -r variant match; do
    if [ "$match" = "true" ]; then
      say "selection $variant: packed run selected the identical set"
    else
      bad "selection $variant: packed run selected a DIFFERENT set"
    fi
  done < <(jq -r '.packed.EndToEnd[] | [.Variant, (.SelectedMatch|tostring)] | @tsv' "$CANDIDATE")

  while IFS=$'\t' read -r variant scalar packed; do
    if jq -n --argjson s "$scalar" --argjson p "$packed" '$p < $s' >/dev/null 2>&1 \
       && [ "$(jq -n --argjson s "$scalar" --argjson p "$packed" '$p < $s')" = "true" ]; then
      say "selection $variant: packed bytes $packed < scalar bytes $scalar"
    else
      bad "selection $variant: packed run sent $packed bytes, scalar $scalar"
    fi
  done < <(jq -r '.packed.EndToEnd[] | [.Variant, (.BytesScalar|tostring), (.BytesPacked|tostring)] | @tsv' "$CANDIDATE")
fi

# --- relative gate against the baseline -------------------------------------
cleanup=""
if [ -z "$BASELINE" ]; then
  # Default baseline: the checked-in copy of the candidate's own file at git
  # HEAD. A brand-new benchmark section has no checked-in baseline on its
  # first run — that is fine: the absolute gates above already fired, so the
  # relative gate just skips instead of failing the run.
  cname=$(basename "$CANDIDATE")
  if git cat-file -e "HEAD:$cname" 2>/dev/null; then
    BASELINE=$(mktemp)
    cleanup=$BASELINE
    git show "HEAD:$cname" > "$BASELINE"
  else
    say "no checked-in baseline for $cname at HEAD (first run of this benchmark section) — skipping relative gate"
  fi
fi
if [ -n "$BASELINE" ] && [ -f "$BASELINE" ] && ! cmp -s "$CANDIDATE" "$BASELINE" \
   && jq -e '.packed.EndToEnd | length > 0' "$BASELINE" >/dev/null 2>&1; then
  while IFS=$'\t' read -r variant cand base; do
    limit=$(jq -n --argjson b "$base" --argjson t "$TOLERANCE" '$b * $t')
    if [ "$(jq -n --argjson c "$cand" --argjson l "$limit" '$c <= $l')" = "true" ]; then
      say "selection $variant: packed wall clock ${cand}s within ${TOLERANCE}x of baseline ${base}s"
    else
      bad "selection $variant: packed wall clock ${cand}s regressed past ${TOLERANCE}x baseline ${base}s"
    fi
  done < <(join -t $'\t' \
      <(jq -r '.packed.EndToEnd[] | [.Variant, (.PackedSeconds|tostring)] | @tsv' "$CANDIDATE" | sort) \
      <(jq -r '.packed.EndToEnd[] | [.Variant, (.PackedSeconds|tostring)] | @tsv' "$BASELINE" | sort))
else
  say "no distinct baseline — skipping relative wall-clock gate"
fi
[ -n "$cleanup" ] && rm -f "$cleanup"

if [ "$fail" -ne 0 ]; then
  echo "bench_compare: REGRESSION DETECTED" >&2
  exit 1
fi
say "all gates passed"
