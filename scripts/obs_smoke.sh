#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test.
#
# Builds vfpsserve, starts it on a loopback port, drives one encrypted
# selection through the API, then asserts the /metrics exposition carries
# every wired family (transport histograms, HE counters, cost-model gauges)
# and that /metrics.json, /v1/trace and /debug/vars respond. Exits non-zero
# on the first failed assertion.
set -euo pipefail

PORT="${OBS_SMOKE_PORT:-18974}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
BIN="$(mktemp -d)/vfpsserve"
LOG="$(mktemp)"

cleanup() {
    [[ -n "${SRV_PID:-}" ]] && kill "${SRV_PID}" 2>/dev/null || true
    [[ -n "${SRV_PID:-}" ]] && wait "${SRV_PID}" 2>/dev/null || true
    rm -f "${BIN}" "${LOG}"
}
trap cleanup EXIT

echo "obs-smoke: building vfpsserve"
go build -o "${BIN}" ./cmd/vfpsserve

"${BIN}" -addr "${ADDR}" >"${LOG}" 2>&1 &
SRV_PID=$!

echo "obs-smoke: waiting for ${BASE}/healthz"
for i in $(seq 1 50); do
    if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "${SRV_PID}" 2>/dev/null; then
        echo "obs-smoke: server died during startup:" >&2
        cat "${LOG}" >&2
        exit 1
    fi
    sleep 0.1
done
curl -sf "${BASE}/healthz" >/dev/null

echo "obs-smoke: driving two encrypted selections (packed, adaptive, delta-cached)"
# Two identical selections on one consortium: the first warms the cross-round
# delta cache, the second must hit it — so the cache-hit counter below carries
# a real value, not just a declared family.
ID=$(curl -sf -X POST "${BASE}/v1/consortiums" \
    -d '{"dataset":"Rice","rows":150,"parties":3,"scheme":"paillier","wire":"binary","pack":true,"packAdaptive":true,"chunkBytes":4096,"deltaCache":true}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[[ -n "${ID}" ]] || { echo "obs-smoke: consortium creation failed" >&2; exit 1; }
curl -sf -X POST "${BASE}/v1/consortiums/${ID}/select" \
    -d '{"count":2,"k":5,"numQueries":6,"seed":1}' >/dev/null
curl -sf -X POST "${BASE}/v1/consortiums/${ID}/select" \
    -d '{"count":2,"k":5,"numQueries":6,"seed":1}' >/dev/null

echo "obs-smoke: scraping /metrics"
METRICS=$(curl -sf "${BASE}/metrics")
for family in \
    vfps_transport_calls_total \
    vfps_transport_errors_total \
    vfps_transport_call_seconds \
    vfps_transport_request_bytes \
    vfps_transport_response_bytes \
    vfps_he_ops_total \
    vfps_he_op_seconds \
    vfps_he_randomizer_pool_depth \
    vfps_he_randomizer_fallback_rate \
    vfps_paillier_pool_errors \
    vfps_cost_ops \
    vfps_he_pack_slots \
    vfps_delta_cache_hits_total \
    vfps_delta_cache_misses_total \
    vfps_http_requests_total; do
    if ! grep -q "^# TYPE ${family} " <<<"${METRICS}"; then
        echo "obs-smoke: /metrics missing family ${family}" >&2
        exit 1
    fi
done
# Traffic must actually have been recorded, not just declared.
if ! grep -q "^vfps_he_ops_total{.*} [1-9]" <<<"${METRICS}"; then
    echo "obs-smoke: no HE ops recorded after an encrypted selection" >&2
    exit 1
fi
# Packing was on: the slot-geometry gauge must carry a live pack factor.
if ! grep -q "^vfps_he_pack_slots{.*} [1-9]" <<<"${METRICS}"; then
    echo "obs-smoke: no pack-slot geometry recorded for a packed selection" >&2
    exit 1
fi
# The second identical selection must have hit the cross-round delta cache.
if ! grep -q "^vfps_delta_cache_hits_total{.*} [1-9]" <<<"${METRICS}"; then
    echo "obs-smoke: no delta-cache hits recorded after a repeated selection" >&2
    exit 1
fi

echo "obs-smoke: checking /metrics.json, /v1/trace, /debug/vars"
# Buffer each response before grepping: `curl | grep -q` lets the early grep
# exit close the pipe mid-write, failing curl (and the script, via pipefail)
# once a response outgrows one write chunk.
curl -sf "${BASE}/metrics.json" > "${LOG}" && grep -q '"name"' "${LOG}"
curl -sf "${BASE}/v1/trace" > "${LOG}" && grep -q '"select.similarity"' "${LOG}"
curl -sf "${BASE}/debug/vars" > "${LOG}" && grep -q 'vfps_metrics' "${LOG}"

echo "obs-smoke: OK"
