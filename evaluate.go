package vfps

import (
	"fmt"
	"time"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/ml"
)

// ModelName identifies a downstream model.
type ModelName string

// The downstream models of the paper's evaluation, plus gradient-boosted
// trees (the SecureBoost-style model family of the paper's related work).
const (
	ModelKNN  ModelName = "KNN"
	ModelLR   ModelName = "LR"
	ModelMLP  ModelName = "MLP"
	ModelGBDT ModelName = "GBDT"
)

// EvalOptions tunes downstream training.
type EvalOptions struct {
	// K is the KNN neighbour count (default 10); ignored by LR/MLP.
	K int
	// MaxEpochs bounds LR/MLP training epochs and GBDT boosting rounds
	// (default 200/50, early stopped on validation loss).
	MaxEpochs int
	// LRGrid overrides the learning-rate grid (default {0.001, 0.01, 0.1}).
	LRGrid []float64
	// Seed drives parameter init and batching.
	Seed int64
	// SplitSeed drives the 80/10/10 row split (default 1).
	SplitSeed int64
}

// Evaluation reports downstream training over a selected sub-consortium.
type Evaluation struct {
	Model    ModelName
	Parties  []int
	Accuracy float64 // test accuracy
	// MacroF1 averages per-class F1 over the label classes.
	MacroF1 float64
	// AUC is the area under the ROC curve (binary consortiums only; 0
	// otherwise).
	AUC float64
	// Counts accumulates the federated training/inference cost and
	// ProjectedSeconds prices it under the calibrated model.
	Counts           CostCounts
	ProjectedSeconds float64
	WallTime         time.Duration
	// Fit carries LR/MLP training details (nil for KNN).
	Fit *ml.FitReport
}

// Evaluate trains the named downstream model on the given participants'
// features (all participants when parties is nil) with an 80/10/10 split,
// returning test accuracy and the federated cost of training.
func (c *Consortium) Evaluate(model ModelName, parties []int, opts EvalOptions) (*Evaluation, error) {
	if parties == nil {
		parties = make([]int, c.P())
		for i := range parties {
			parties[i] = i
		}
	}
	sub, err := c.pt.Select(parties)
	if err != nil {
		return nil, err
	}
	splitSeed := opts.SplitSeed
	if splitSeed == 0 {
		splitSeed = 1
	}
	trainRows, valRows, testRows, err := dataset.SplitIndices(c.N(), splitSeed)
	if err != nil {
		return nil, err
	}
	trainPt := sub.ApplyRows(trainRows)
	valPt := sub.ApplyRows(valRows)
	testPt := sub.ApplyRows(testRows)
	yTrain := dataset.SelectLabels(c.labels, trainRows)
	yVal := dataset.SelectLabels(c.labels, valRows)
	yTest := dataset.SelectLabels(c.labels, testRows)

	var counts costmodel.Counts
	var pred []int
	var scores []float64
	start := time.Now()
	ev := &Evaluation{Model: model, Parties: parties}
	switch model {
	case ModelKNN:
		k := opts.K
		if k <= 0 {
			k = 10
		}
		knn, err := ml.NewKNN(k, c.classes)
		if err != nil {
			return nil, err
		}
		knn.Counts = &counts
		if err := knn.Fit(trainPt, yTrain); err != nil {
			return nil, err
		}
		pred, err = knn.Predict(testPt)
		if err != nil {
			return nil, err
		}
		if c.classes == 2 {
			if scores, err = knn.PredictScores(testPt); err != nil {
				return nil, err
			}
		}
	case ModelLR:
		m, err := ml.NewLogisticRegression(trainPt, c.classes, opts.Seed)
		if err != nil {
			return nil, err
		}
		rep, err := m.Fit(trainPt, yTrain, valPt, yVal, ml.TrainConfig{
			MaxEpochs: opts.MaxEpochs, LRGrid: opts.LRGrid, Seed: opts.Seed, Counts: &counts,
		})
		if err != nil {
			return nil, err
		}
		ev.Fit = rep
		pred = m.Predict(testPt)
		if c.classes == 2 {
			if scores, err = m.PredictScores(testPt); err != nil {
				return nil, err
			}
		}
	case ModelMLP:
		m, err := ml.NewMLP(trainPt, c.classes, opts.Seed)
		if err != nil {
			return nil, err
		}
		rep, err := m.Fit(trainPt, yTrain, valPt, yVal, ml.TrainConfig{
			MaxEpochs: opts.MaxEpochs, LRGrid: opts.LRGrid, Seed: opts.Seed, Counts: &counts,
		})
		if err != nil {
			return nil, err
		}
		ev.Fit = rep
		pred = m.Predict(testPt)
		if c.classes == 2 {
			if scores, err = m.PredictScores(testPt); err != nil {
				return nil, err
			}
		}
	case ModelGBDT:
		rounds := opts.MaxEpochs
		m := ml.NewGBDT(ml.GBDTConfig{Rounds: rounds})
		m.Counts = &counts
		if err := m.Fit(trainPt, yTrain, valPt, yVal); err != nil {
			return nil, err
		}
		pred, err = m.Predict(testPt)
		if err != nil {
			return nil, err
		}
		if scores, err = m.PredictScores(testPt); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("vfps: unknown model %q", model)
	}
	ev.Accuracy = ml.Accuracy(pred, yTest)
	ev.MacroF1 = ml.MacroF1(pred, yTest, c.classes)
	if scores != nil {
		ev.AUC = ml.AUC(scores, yTest)
	}
	ev.WallTime = time.Since(start)
	ev.Counts = counts.Snapshot()
	ev.ProjectedSeconds = costmodel.For(c.cluster.Leader.Scheme().Name()).Seconds(ev.Counts)
	return ev, nil
}
