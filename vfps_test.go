package vfps

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func testConsortium(t *testing.T, name string, rows, parties int) *Consortium {
	t.Helper()
	d, err := GenerateDataset(name, rows)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := VerticalSplit(d, parties, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsortium(context.Background(), Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cons
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 10 {
		t.Fatalf("expected 10 datasets, got %v", names)
	}
}

func TestNewConsortiumValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := NewConsortium(ctx, Config{}); err == nil {
		t.Fatal("expected partition error")
	}
	d, _ := GenerateDataset("Rice", 100)
	pt, _ := VerticalSplit(d, 3, 1)
	if _, err := NewConsortium(ctx, Config{Partition: pt, Labels: d.Y[:5], Classes: 2}); err == nil {
		t.Fatal("expected label length error")
	}
	if _, err := NewConsortium(ctx, Config{Partition: pt, Labels: d.Y, Classes: 1}); err == nil {
		t.Fatal("expected classes error")
	}
}

func TestSelectPublicAPI(t *testing.T) {
	cons := testConsortium(t, "Bank", 200, 4)
	sel, err := cons.Select(context.Background(), 2, SelectOptions{K: 5, NumQueries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
	if sel.Counts.Encryptions == 0 {
		t.Fatal("no cost accounting")
	}
}

func TestSelectWithAllMethods(t *testing.T) {
	cons := testConsortium(t, "Bank", 150, 4)
	ctx := context.Background()
	opts := SelectOptions{K: 5, NumQueries: 10, Seed: 2}
	for _, m := range []Method{MethodVFPS, MethodVFPSBase, MethodRandom, MethodShapley, MethodVFMine} {
		sel, err := cons.SelectWith(ctx, m, 2, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(sel.Selected) != 2 || sel.Selected[0] == sel.Selected[1] {
			t.Fatalf("%s: selection %v", m, sel.Selected)
		}
		if sel.Method != m {
			t.Fatalf("method echo wrong: %s", sel.Method)
		}
	}
	if _, err := cons.SelectWith(ctx, Method("astrology"), 2, opts); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

func TestSelectWithCostOrdering(t *testing.T) {
	// The paper's core efficiency claims, end to end through the public API:
	// shapley >> vfmine > vfps-sm, and vfps-sm-base > vfps-sm.
	cons := testConsortium(t, "Credit", 150, 4)
	ctx := context.Background()
	opts := SelectOptions{K: 5, NumQueries: 8, Seed: 2}
	get := func(m Method) float64 {
		sel, err := cons.SelectWith(ctx, m, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sel.ProjectedSeconds
	}
	sm := get(MethodVFPS)
	base := get(MethodVFPSBase)
	sh := get(MethodShapley)
	vm := get(MethodVFMine)
	if !(sh > vm && vm > sm) {
		t.Fatalf("projected cost ordering violated: shapley %g, vfmine %g, vfps %g", sh, vm, sm)
	}
	if base <= sm {
		t.Fatalf("base %g should cost more than fagin %g", base, sm)
	}
}

func TestEvaluateDownstreamModels(t *testing.T) {
	cons := testConsortium(t, "Rice", 600, 3)
	for _, m := range []ModelName{ModelKNN, ModelLR, ModelMLP} {
		ev, err := cons.Evaluate(m, nil, EvalOptions{K: 5, MaxEpochs: 6, LRGrid: []float64{0.01}, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if ev.Accuracy < 0.7 {
			t.Fatalf("%s accuracy %.3f too low", m, ev.Accuracy)
		}
		if ev.Counts.Encryptions == 0 {
			t.Fatalf("%s: no federated cost accounted", m)
		}
	}
	if _, err := cons.Evaluate(ModelName("SVM"), nil, EvalOptions{}); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

func TestEvaluateSubsetCheaperThanAll(t *testing.T) {
	cons := testConsortium(t, "Credit", 400, 4)
	all, err := cons.Evaluate(ModelLR, nil, EvalOptions{MaxEpochs: 3, LRGrid: []float64{0.01}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cons.Evaluate(ModelLR, []int{0, 1}, EvalOptions{MaxEpochs: 3, LRGrid: []float64{0.01}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Counts.Encryptions >= all.Counts.Encryptions {
		t.Fatalf("subset training should be cheaper: %d vs %d",
			sub.Counts.Encryptions, all.Counts.Encryptions)
	}
}

func TestEvaluateInvalidParties(t *testing.T) {
	cons := testConsortium(t, "Rice", 200, 3)
	if _, err := cons.Evaluate(ModelKNN, []int{7}, EvalOptions{}); err == nil {
		t.Fatal("expected party range error")
	}
}

func TestAccessors(t *testing.T) {
	cons := testConsortium(t, "Rice", 100, 3)
	if cons.P() != 3 || cons.N() != 100 || cons.Classes() != 2 {
		t.Fatal("accessors wrong")
	}
	if cons.Partition().P() != 3 || len(cons.Labels()) != 100 {
		t.Fatal("partition/labels accessors wrong")
	}
}

func TestSelectDeterministicPublic(t *testing.T) {
	cons := testConsortium(t, "Bank", 150, 4)
	ctx := context.Background()
	a, err := cons.Select(ctx, 2, SelectOptions{K: 5, NumQueries: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cons.Select(ctx, 2, SelectOptions{K: 5, NumQueries: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Fatal("selection not deterministic")
	}
}

func TestSelectParallelismMatchesSequential(t *testing.T) {
	cons := testConsortium(t, "Credit", 200, 4)
	ctx := context.Background()
	opts := SelectOptions{K: 5, NumQueries: 12, Seed: 6}
	seq, err := cons.Select(ctx, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := cons.Select(ctx, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Selected, par.Selected) {
		t.Fatalf("parallel selection diverges: %v vs %v", seq.Selected, par.Selected)
	}
	for i := range seq.W {
		for j := range seq.W[i] {
			if seq.W[i][j] != par.W[i][j] {
				t.Fatal("parallel similarity matrix diverges")
			}
		}
	}
}

func TestSelectThresholdProtocol(t *testing.T) {
	cons := testConsortium(t, "Bank", 150, 4)
	ctx := context.Background()
	fagin, err := cons.Select(ctx, 2, SelectOptions{K: 5, NumQueries: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := cons.Select(ctx, 2, SelectOptions{K: 5, NumQueries: 8, Seed: 2, TopK: "threshold"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fagin.Selected, ta.Selected) {
		t.Fatalf("TA selection diverges: %v vs %v", fagin.Selected, ta.Selected)
	}
	if ta.AvgCandidates > fagin.AvgCandidates {
		t.Fatalf("TA candidates %g exceed fagin %g", ta.AvgCandidates, fagin.AvgCandidates)
	}
}

func TestSelectAdaptivePublic(t *testing.T) {
	cons := testConsortium(t, "Rice", 300, 3)
	sel, err := cons.SelectAdaptive(context.Background(), 2, AdaptiveOptions{
		SelectOptions: SelectOptions{K: 5, NumQueries: 64, Seed: 4},
		Tolerance:     0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
	if sel.QueriesUsed <= 0 || sel.QueriesUsed > 64 {
		t.Fatalf("queries used %d", sel.QueriesUsed)
	}
}

func TestSecAggConsortiumPublic(t *testing.T) {
	d, err := GenerateDataset("Bank", 150)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := VerticalSplit(d, 4, 1)
	ctx := context.Background()
	masked, err := NewConsortium(ctx, Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes, Scheme: "secagg",
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewConsortium(ctx, Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectOptions{K: 5, NumQueries: 10, Seed: 2}
	a, err := masked.Select(ctx, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Select(ctx, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Fatalf("secagg selection %v differs from plain %v", a.Selected, b.Selected)
	}
	// Masking must project far cheaper than HE.
	if a.ProjectedSeconds >= b.ProjectedSeconds {
		t.Fatalf("secagg %g not cheaper than HE pricing %g", a.ProjectedSeconds, b.ProjectedSeconds)
	}
}

func TestEvaluateGBDT(t *testing.T) {
	cons := testConsortium(t, "Rice", 600, 3)
	ev, err := cons.Evaluate(ModelGBDT, nil, EvalOptions{MaxEpochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.8 {
		t.Fatalf("GBDT accuracy %.3f too low", ev.Accuracy)
	}
	if ev.Counts.Encryptions == 0 || ev.Counts.Decryptions == 0 {
		t.Fatal("GBDT federated cost not accounted")
	}
}

func TestRewardSharesPublic(t *testing.T) {
	cons := testConsortium(t, "Rice", 200, 3)
	sel, err := cons.Select(context.Background(), 2, SelectOptions{K: 5, NumQueries: 10})
	if err != nil {
		t.Fatal(err)
	}
	shares, err := RewardShares(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("shares %v", shares)
	}
	var sum float64
	for _, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %g", s)
		}
		sum += s
	}
	if sum <= 0 {
		t.Fatal("shares sum to nothing")
	}
	if _, err := RewardShares(nil); err == nil {
		t.Fatal("expected nil-selection error")
	}
}

func TestDPConsortiumPublic(t *testing.T) {
	d, _ := GenerateDataset("Rice", 150)
	pt, _ := VerticalSplit(d, 3, 1)
	cons, err := NewConsortium(context.Background(), Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes,
		Scheme: "dp", DPEpsilon: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := cons.Select(context.Background(), 2, SelectOptions{K: 5, NumQueries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
}

func TestSelectStratifiedQueries(t *testing.T) {
	cons := testConsortium(t, "Bank", 200, 4)
	sel, err := cons.Select(context.Background(), 2,
		SelectOptions{K: 5, NumQueries: 12, Seed: 2, Stratified: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
	if sel.QueriesUsed != 12 {
		t.Fatalf("queries used %d", sel.QueriesUsed)
	}
}

func TestEvaluateReportsAUCAndF1(t *testing.T) {
	cons := testConsortium(t, "Rice", 500, 3)
	for _, m := range []ModelName{ModelKNN, ModelLR, ModelGBDT} {
		ev, err := cons.Evaluate(m, nil, EvalOptions{K: 5, MaxEpochs: 8, LRGrid: []float64{0.01}, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if ev.AUC < 0.85 {
			t.Fatalf("%s: AUC %.3f too low", m, ev.AUC)
		}
		if ev.MacroF1 <= 0 || ev.MacroF1 > 1 {
			t.Fatalf("%s: F1 %.3f out of range", m, ev.MacroF1)
		}
	}
}

// multiclassConsortium builds a 4-class consortium from a custom generator
// shape (the paper's suite is binary; the library is not).
func multiclassConsortium(t *testing.T) *Consortium {
	t.Helper()
	// Reuse the Rice generator geometry but with 4 classes via CSV-free
	// direct construction: generate binary twice and remap? Simpler: build
	// from a custom spec through the internal dataset API is not exported,
	// so synthesise directly.
	d, err := GenerateDataset("Rice", 600)
	if err != nil {
		t.Fatal(err)
	}
	// Derive a 4-class labelling from feature quadrants so the task stays
	// learnable: class = 2*y + sign(first feature).
	y4 := make([]int, d.N())
	for i := range y4 {
		q := 0
		if d.X.At(i, 0) > 0 {
			q = 1
		}
		y4[i] = 2*d.Y[i] + q
	}
	pt, err := VerticalSplit(d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsortium(context.Background(), Config{
		Partition: pt, Labels: y4, Classes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cons
}

func TestMulticlassEndToEnd(t *testing.T) {
	cons := multiclassConsortium(t)
	ctx := context.Background()
	// Selection is label-free and must work unchanged.
	sel, err := cons.Select(ctx, 2, SelectOptions{K: 5, NumQueries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
	// Downstream multiclass training: KNN and LR support C > 2.
	for _, m := range []ModelName{ModelKNN, ModelLR} {
		ev, err := cons.Evaluate(m, sel.Selected, EvalOptions{K: 5, MaxEpochs: 8, LRGrid: []float64{0.01}, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if ev.Accuracy < 0.4 { // 4 classes, chance = 0.25
			t.Fatalf("%s: multiclass accuracy %.3f at chance level", m, ev.Accuracy)
		}
		if ev.AUC != 0 {
			t.Fatalf("%s: AUC must be skipped for multiclass", m)
		}
	}
	// GBDT is binary-only and must refuse loudly.
	if _, err := cons.Evaluate(ModelGBDT, nil, EvalOptions{MaxEpochs: 5}); err == nil {
		t.Fatal("expected GBDT multiclass rejection")
	}
	// Shapley baseline uses labels and must handle 4 classes.
	if _, err := cons.SelectWith(ctx, MethodShapley, 2, SelectOptions{K: 5, NumQueries: 8, Seed: 1}); err != nil {
		t.Fatalf("shapley multiclass: %v", err)
	}
}

func TestKNNShapleyPublic(t *testing.T) {
	d, _ := GenerateDataset("Rice", 300)
	pt, _ := VerticalSplit(d, 3, 1)
	trainRows, _, testRows, err := SplitIndices(d.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	values, err := KNNShapley(
		pt.ApplyRows(trainRows), SelectLabels(d.Y, trainRows),
		pt.ApplyRows(testRows), SelectLabels(d.Y, testRows), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != len(trainRows) {
		t.Fatalf("got %d values for %d samples", len(values), len(trainRows))
	}
	var sum float64
	negatives := 0
	for _, v := range values {
		sum += v
		if v < 0 {
			negatives++
		}
	}
	if sum <= 0.5 {
		t.Fatalf("total value %g implausibly low on learnable data", sum)
	}
	// Label noise in the generator guarantees some harmful samples.
	if negatives == 0 {
		t.Fatal("expected some negative-value (harmful) samples")
	}
}

func TestFormatSelection(t *testing.T) {
	cons := testConsortium(t, "Rice", 120, 3)
	sel, err := cons.Select(context.Background(), 2, SelectOptions{K: 5, NumQueries: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSelection(sel)
	for _, want := range []string{
		"selected participants:", "marginal gain", "similarity matrix",
		"encrypted candidates", "projected",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if FormatSelection(nil) != "<nil selection>" {
		t.Fatal("nil selection formatting wrong")
	}
}
